// venice_high_tide_alert — the paper's motivating scenario as an
// application: an "acqua alta" early-warning system for the Venice Lagoon.
//
// Global models predict average tides well but miss the rare extremes that
// actually matter (the paper's central argument). This example trains the
// local-rule system at a 4-hour horizon and runs it as an alert generator:
// whenever the forecast exceeds the alert threshold, an alarm is raised 4
// hours ahead of time. We score alarms like an operational service — hits,
// misses, false alarms — and compare against the global AR model.
//
// Build & run:  ./build/examples/venice_high_tide_alert [--threshold 100]
#include <cstdio>
#include <vector>

#include "baselines/ar.hpp"
#include "core/rule_system.hpp"
#include "obs/run_report.hpp"
#include "series/venice.hpp"
#include "util/cli.hpp"

namespace {

struct AlertScore {
  int hits = 0;          // alarm raised and high water occurred
  int misses = 0;        // high water with no alarm
  int false_alarms = 0;  // alarm but no high water
  int abstentions = 0;   // event hours where the model declined to predict

  [[nodiscard]] double hit_rate() const {
    const int events = hits + misses;
    return events ? 100.0 * hits / events : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const double threshold = cli.get_double("threshold", 100.0);  // cm
  const std::size_t horizon = static_cast<std::size_t>(cli.get_int("horizon", 4));
  const std::size_t window = 24;

  std::printf("High-tide alert demo: predict %zu h ahead, alarm at %.0f cm\n", horizon,
              threshold);

  // More storms than the default so the demo has events to detect.
  ef::series::VeniceParams params;
  params.seed = 1966;  // the famous flood year
  params.storm_rate_per_hour = 1.0 / 250.0;
  const auto experiment = ef::series::make_paper_venice(8000, 2000, params);
  const ef::core::WindowDataset train(experiment.train, window, horizon);
  const ef::core::WindowDataset validation(experiment.validation, window, horizon);

  ef::core::RuleSystemConfig config;
  config.evolution.population_size = 100;
  config.evolution.generations = static_cast<std::size_t>(cli.get_int("generations", 6000));
  config.evolution.emax = 25.0;
  config.evolution.seed = 7;
  config.coverage_target_percent = 97.0;
  config.max_executions = 6;

  std::printf("training rule system on %zu windows...\n", train.count());
  const auto result = ef::core::train(train, {.config = config});
  std::printf("%zu rules, train coverage %.1f%%\n\n", result.system.size(),
              result.train_coverage_percent);

  ef::baselines::ArModel ar;
  ar.fit(train);

  // Score both models hour by hour over the validation range.
  const auto forecast = result.system.forecast_dataset(validation);
  AlertScore rules_score;
  AlertScore ar_score;
  int event_hours = 0;
  for (std::size_t i = 0; i < validation.count(); ++i) {
    const bool event = validation.target(i) >= threshold;
    event_hours += event ? 1 : 0;

    const double ar_prediction = ar.predict(validation.pattern(i));
    const bool ar_alarm = ar_prediction >= threshold;
    if (event && ar_alarm) ++ar_score.hits;
    if (event && !ar_alarm) ++ar_score.misses;
    if (!event && ar_alarm) ++ar_score.false_alarms;

    if (!forecast[i].has_value()) {
      if (event) ++rules_score.abstentions;
      continue;  // no alarm decision without a prediction
    }
    const bool rule_alarm = *forecast[i] >= threshold;
    if (event && rule_alarm) ++rules_score.hits;
    if (event && !rule_alarm) ++rules_score.misses;
    if (!event && rule_alarm) ++rules_score.false_alarms;
  }

  std::printf("validation: %zu hours, %d high-water hours (>= %.0f cm)\n",
              validation.count(), event_hours, threshold);
  std::printf("%-12s %6s %7s %12s %12s\n", "model", "hits", "misses", "false-alarms",
              "hit-rate");
  std::printf("%-12s %6d %7d %12d %11.1f%%  (+%d events abstained)\n", "rule-system",
              rules_score.hits, rules_score.misses, rules_score.false_alarms,
              rules_score.hit_rate(), rules_score.abstentions);
  std::printf("%-12s %6d %7d %12d %11.1f%%\n", "global-AR", ar_score.hits,
              ar_score.misses, ar_score.false_alarms, ar_score.hit_rate());

  std::printf("\nThe local-rule system's value proposition (paper §1): comparable or\n"
              "better detection of the rare events, because dedicated rules form for\n"
              "the atypical regimes a single global fit has to average away.\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
