#include "baselines/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baselines/linalg.hpp"

namespace ef::baselines {

void KnnConfig::validate() const {
  if (k == 0) throw std::invalid_argument("KnnConfig: k must be >= 1");
}

Knn::Knn(KnnConfig config) : config_(config) { config_.validate(); }

void Knn::fit(const core::WindowDataset& train) {
  patterns_.clear();
  targets_.clear();
  patterns_.reserve(train.count());
  targets_.reserve(train.count());
  for (std::size_t i = 0; i < train.count(); ++i) {
    const auto p = train.pattern(i);
    patterns_.emplace_back(p.begin(), p.end());
    targets_.push_back(train.target(i));
  }
  fitted_ = true;
}

double Knn::predict(std::span<const double> window) const {
  if (!fitted_) throw std::logic_error("Knn::predict before fit");
  const std::size_t k = std::min(config_.k, patterns_.size());

  // Partial-select the k smallest squared distances.
  std::vector<std::pair<double, std::size_t>> dist;
  dist.reserve(patterns_.size());
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    dist.emplace_back(squared_distance(patterns_[i], window), i);
  }
  std::nth_element(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dist.end());

  if (!config_.inverse_distance_weighting) {
    double sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) sum += targets_[dist[j].second];
    return sum / static_cast<double>(k);
  }
  // 1/d weighting; an exact match (d = 0) short-circuits to its target.
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const double d = std::sqrt(dist[j].first);
    if (d == 0.0) return targets_[dist[j].second];
    weighted += targets_[dist[j].second] / d;
    total += 1.0 / d;
  }
  return weighted / total;
}

}  // namespace ef::baselines
