#include "experiments/experiments.hpp"

#include <cmath>
#include <vector>

#include "baselines/ar.hpp"
#include "baselines/arma.hpp"
#include "baselines/elman.hpp"
#include "baselines/mlp.hpp"
#include "baselines/mran.hpp"
#include "baselines/ran.hpp"
#include "series/mackey_glass.hpp"
#include "series/metrics.hpp"
#include "series/significance.hpp"
#include "series/sunspot.hpp"
#include "series/venice.hpp"

namespace ef::experiments {
namespace {

[[nodiscard]] std::vector<double> targets_of(const core::WindowDataset& data) {
  std::vector<double> out;
  out.reserve(data.count());
  for (std::size_t i = 0; i < data.count(); ++i) out.push_back(data.target(i));
  return out;
}

/// Train and evaluate the rule system; fills the common row fields and
/// returns the forecast for metric-specific post-processing.
[[nodiscard]] series::PartialForecast evaluate_rule_system(
    const core::WindowDataset& train, const core::WindowDataset& validation,
    const core::RuleSystemConfig& config, RuleSystemRow& row) {
  const auto result = core::train(train, {.config = config});
  const auto forecast = result.system.forecast_dataset(validation);
  const auto report = series::evaluate_partial(targets_of(validation), forecast);
  row.coverage_percent = report.coverage_percent;
  row.rmse = report.rmse;
  row.mae = report.mae;
  row.nmse = report.nmse;
  row.rules = result.system.size();
  row.executions = result.executions;
  return forecast;
}

}  // namespace

double venice_emax_schedule(std::size_t horizon) {
  return 8.0 + 48.0 * (1.0 - std::exp(-static_cast<double>(horizon) / 8.0));
}

VeniceRowResult run_venice_row(const VeniceRowConfig& config) {
  const auto experiment =
      series::make_paper_venice(config.train_hours, config.validation_hours);
  const core::WindowDataset train(experiment.train, config.window, config.horizon);
  const core::WindowDataset validation(experiment.validation, config.window,
                                       config.horizon);

  core::RuleSystemConfig rs_config;
  rs_config.evolution.population_size = config.population;
  rs_config.evolution.generations = config.generations;
  rs_config.evolution.emax =
      config.emax > 0.0 ? config.emax : venice_emax_schedule(config.horizon);
  rs_config.evolution.seed = config.seed + config.horizon;
  rs_config.coverage_target_percent = config.coverage_target_percent;
  rs_config.max_executions = config.max_executions;

  VeniceRowResult result;
  const auto forecast = evaluate_rule_system(train, validation, rs_config, result.rs);

  const auto actual = targets_of(validation);

  baselines::MlpConfig mlp_config;
  mlp_config.hidden = {16};
  mlp_config.epochs = config.mlp_epochs;
  mlp_config.seed = config.seed + 1000 + config.horizon;
  baselines::Mlp mlp(mlp_config);
  mlp.fit(train);
  const auto mlp_predictions = mlp.predict_all(validation);
  result.rmse_mlp = series::rmse(actual, mlp_predictions);

  // Paired significance over the covered windows (the only ones the rule
  // system answers on — the fair comparison set).
  std::vector<double> rs_abs_err;
  std::vector<double> mlp_abs_err;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (!forecast[i]) continue;
    rs_abs_err.push_back(std::abs(*forecast[i] - actual[i]));
    mlp_abs_err.push_back(std::abs(mlp_predictions[i] - actual[i]));
  }
  if (!rs_abs_err.empty()) {
    result.p_rs_vs_mlp =
        series::compare_paired_errors(rs_abs_err, mlp_abs_err).wilcoxon_p;
  }

  baselines::ArModel ar;
  ar.fit(train);
  result.rmse_ar = series::rmse(actual, ar.predict_all(validation));

  baselines::Arma arma;
  arma.fit(train);
  result.rmse_arma = series::rmse(actual, arma.predict_all(validation));
  return result;
}

MackeyGlassRowResult run_mackey_glass_row(const MackeyGlassRowConfig& config) {
  const auto experiment = series::make_paper_mackey_glass();
  const core::WindowDataset train(experiment.train, config.window, config.horizon,
                                  config.stride);
  const core::WindowDataset test(experiment.test, config.window, config.horizon,
                                 config.stride);

  core::RuleSystemConfig rs_config;
  rs_config.evolution.population_size = config.population;
  rs_config.evolution.generations = config.generations;
  rs_config.evolution.emax = config.emax;
  rs_config.evolution.seed = config.seed + config.horizon;
  rs_config.coverage_target_percent = config.coverage_target_percent;
  rs_config.max_executions = config.max_executions;

  MackeyGlassRowResult result;
  (void)evaluate_rule_system(train, test, rs_config, result.rs);

  const auto actual = targets_of(test);

  baselines::RanConfig ran_config;
  ran_config.passes = config.rbf_passes;
  baselines::Ran ran(ran_config);
  ran.fit(train);
  result.nmse_ran = series::nmse(actual, ran.predict_all(test));

  baselines::MranConfig mran_config;
  mran_config.passes = config.rbf_passes;
  baselines::Mran mran(mran_config);
  mran.fit(train);
  result.nmse_mran = series::nmse(actual, mran.predict_all(test));
  return result;
}

double sunspot_emax_schedule(std::size_t horizon) {
  return 0.18 + 0.007 * static_cast<double>(horizon);
}

SunspotRowResult run_sunspot_row(const SunspotRowConfig& config) {
  const auto experiment = series::make_paper_sunspots();
  const core::WindowDataset train(experiment.train, config.window, config.horizon);
  const core::WindowDataset validation(experiment.validation, config.window,
                                       config.horizon);

  core::RuleSystemConfig rs_config;
  rs_config.evolution.population_size = config.population;
  rs_config.evolution.generations = config.generations;
  rs_config.evolution.emax =
      config.emax > 0.0 ? config.emax : sunspot_emax_schedule(config.horizon);
  rs_config.evolution.seed = config.seed + config.horizon;
  rs_config.coverage_target_percent = config.coverage_target_percent;
  rs_config.max_executions = config.max_executions;

  SunspotRowResult result;
  const auto forecast =
      evaluate_rule_system(train, validation, rs_config, result.rs);
  const auto actual = targets_of(validation);
  result.galvan_rs = series::galvan_error_partial(actual, forecast, config.horizon);

  baselines::MlpConfig mlp_config;
  mlp_config.hidden = {12};
  mlp_config.epochs = config.mlp_epochs;
  mlp_config.seed = config.seed + 1000 + config.horizon;
  baselines::Mlp mlp(mlp_config);
  mlp.fit(train);
  result.galvan_mlp =
      series::galvan_error(actual, mlp.predict_all(validation), config.horizon);

  baselines::ElmanConfig elman_config;
  elman_config.hidden = 10;
  elman_config.epochs = config.elman_epochs;
  elman_config.seed = config.seed + 2000 + config.horizon;
  baselines::Elman elman(elman_config);
  elman.fit(train);
  result.galvan_elman =
      series::galvan_error(actual, elman.predict_all(validation), config.horizon);
  return result;
}

}  // namespace ef::experiments
