// elman.hpp — Elman recurrent network baseline ("Recurr. NN", Table 3).
//
// Re-implementation of the recurrent comparator quoted from Galván-Isasi:
// a single tanh hidden layer with a self-recurrent context,
//   h_t = tanh(W_x·x_t + W_h·h_{t−1} + b),   y = w·h_D + c,
// driven by the D window values one scalar per step, trained with full
// back-propagation through time over the window (D is small, so a full
// unroll is exact and cheap — no truncation heuristics needed).
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/forecaster.hpp"
#include "baselines/linalg.hpp"

namespace ef::baselines {

struct ElmanConfig {
  std::size_t hidden = 12;
  double learning_rate = 0.005;
  double lr_decay = 0.97;  ///< per-epoch multiplier
  std::size_t epochs = 40;
  bool shuffle = true;
  std::uint64_t seed = 11;
  /// Gradient-norm clip per sample (BPTT over chaotic series explodes
  /// without it); 0 disables clipping.
  double grad_clip = 5.0;
  /// Standardise the scalar input stream and the target internally (fitted
  /// on train, inverted at prediction); see MlpConfig::standardize.
  bool standardize = true;

  void validate() const;
};

class Elman final : public Forecaster {
 public:
  explicit Elman(ElmanConfig config = {});

  void fit(const core::WindowDataset& train) override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "elman"; }

  [[nodiscard]] const ElmanConfig& config() const noexcept { return config_; }
  [[nodiscard]] double final_train_mse() const noexcept { return final_train_mse_; }

 private:
  /// Run the recurrence over a window; returns all hidden states
  /// h_0 (zeros) … h_D and the output.
  [[nodiscard]] double forward(std::span<const double> window,
                               std::vector<std::vector<double>>& states) const;

  ElmanConfig config_;
  double input_mean_ = 0.0;
  double input_sd_ = 1.0;
  double target_mean_ = 0.0;
  double target_sd_ = 1.0;
  std::vector<double> w_in_;   // hidden × 1 input weights
  Matrix w_rec_;               // hidden × hidden recurrent weights
  std::vector<double> b_;      // hidden biases
  std::vector<double> w_out_;  // 1 × hidden readout
  double b_out_ = 0.0;
  bool fitted_ = false;
  double final_train_mse_ = 0.0;
};

}  // namespace ef::baselines
