#include "series/csv.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ef::series {
namespace {

/// Split one CSV line on the delimiter (no quoting support — numeric data).
[[nodiscard]] std::vector<std::string> split_line(const std::string& line, char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, delimiter)) cells.push_back(cell);
  return cells;
}

[[nodiscard]] bool parse_double(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    out = std::stod(text, &consumed);
    // Allow trailing whitespace / CR only.
    while (consumed < text.size() &&
           (text[consumed] == ' ' || text[consumed] == '\t' || text[consumed] == '\r')) {
      ++consumed;
    }
    return consumed == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

TimeSeries read_series_csv(std::istream& in, std::size_t column, char delimiter,
                           const std::string& name) {
  std::vector<double> values;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    const auto cells = split_line(line, delimiter);
    if (column >= cells.size()) {
      throw std::runtime_error("read_series_csv: line " + std::to_string(line_no) +
                               " has only " + std::to_string(cells.size()) + " columns");
    }
    double v = 0.0;
    if (parse_double(cells[column], v)) {
      // std::stod happily parses "inf"/"nan" spellings, but TimeSeries
      // rejects non-finite values in its constructor with a different
      // exception type and no line context. Reject here so every bad row
      // fails the same way (found by the csv fuzz harness).
      if (!std::isfinite(v)) {
        throw std::runtime_error("read_series_csv: non-finite cell '" + cells[column] +
                                 "' at line " + std::to_string(line_no));
      }
      values.push_back(v);
    } else if (line_no == 1) {
      continue;  // header row
    } else {
      throw std::runtime_error("read_series_csv: non-numeric cell '" + cells[column] +
                               "' at line " + std::to_string(line_no));
    }
  }
  return TimeSeries(std::move(values), name);
}

TimeSeries read_series_csv(const std::string& path, std::size_t column, char delimiter) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("read_series_csv: cannot open '" + path + "'");
  return read_series_csv(file, column, delimiter, path);
}

void write_series_csv(const std::string& path, const TimeSeries& s) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_series_csv: cannot open '" + path + "'");
  file << "value\n";
  for (const double v : s.values()) file << v << '\n';
  if (!file) throw std::runtime_error("write_series_csv: write failed for '" + path + "'");
}

void Table::add_column(std::string name, std::vector<double> values) {
  if (!columns.empty() && values.size() != columns.front().size()) {
    throw std::invalid_argument("Table::add_column: column '" + name + "' has " +
                                std::to_string(values.size()) + " rows, table has " +
                                std::to_string(columns.front().size()));
  }
  header.push_back(std::move(name));
  columns.push_back(std::move(values));
}

void write_table_csv(std::ostream& out, const Table& table) {
  for (std::size_t c = 0; c < table.header.size(); ++c) {
    if (c) out << ',';
    out << table.header[c];
  }
  out << '\n';
  for (std::size_t r = 0; r < table.rows(); ++r) {
    for (std::size_t c = 0; c < table.columns.size(); ++c) {
      if (c) out << ',';
      const double v = table.columns[c][r];
      if (!std::isnan(v)) out << v;
    }
    out << '\n';
  }
}

void write_table_csv(const std::string& path, const Table& table) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_table_csv: cannot open '" + path + "'");
  write_table_csv(file, table);
  if (!file) throw std::runtime_error("write_table_csv: write failed for '" + path + "'");
}

}  // namespace ef::series
