// cli.hpp — minimal command-line flag parser shared by benches and examples.
//
// Supports `--name value`, `--name=value` and boolean `--name` forms; every
// bench binary registers its sweep parameters through this so that the
// harness stays dependency-free.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ef::util {

/// Parsed command line: flag→value map plus positional arguments.
class Cli {
 public:
  /// Parse argv. Unrecognised syntax (a lone "-x") is treated as positional.
  /// A flag without a following value (or followed by another flag) is stored
  /// as boolean "true".
  Cli(int argc, const char* const* argv);

  /// Whole-string flag lookup; nullopt when absent.
  [[nodiscard]] std::optional<std::string> get(std::string_view name) const;

  /// Typed lookups with defaults. Throw std::invalid_argument on parse
  /// failure so a typo in a sweep script fails loudly instead of silently
  /// running the wrong experiment.
  [[nodiscard]] std::string get_string(std::string_view name, std::string def) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name, std::int64_t def) const;
  [[nodiscard]] double get_double(std::string_view name, double def) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool def = false) const;

  /// True when the flag appeared at all (with or without a value).
  [[nodiscard]] bool has(std::string_view name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Program name (argv[0]) as given.
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ef::util
