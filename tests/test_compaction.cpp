// Tests for core/compaction.hpp: subsumption relation, duplicate removal,
// the behaviour-preservation guarantee (coverage never drops; predictions
// move at most by the tolerance), and the unfired-rule pass.
#include "core/compaction.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "series/timeseries.hpp"

namespace {

using ef::core::compact;
using ef::core::CompactionOptions;
using ef::core::CompactionReport;
using ef::core::condition_subsumed;
using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystem;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

Rule make_rule(std::vector<Interval> genes, double prediction, double fitness = 1.0) {
  Rule r(std::move(genes));
  ef::core::PredictingPart part;
  part.fit.coeffs.assign(r.window() + 1, 0.0);
  part.fit.coeffs.back() = prediction;
  part.fit.mean_prediction = prediction;
  part.matches = 4;
  part.fitness = fitness;
  r.set_predicting(part);
  return r;
}

TEST(ConditionSubsumed, BasicRelations) {
  const Rule inner({Interval(2, 3), Interval(5, 6)});
  const Rule outer({Interval(0, 10), Interval(0, 10)});
  const Rule wild({Interval::wildcard(), Interval::wildcard()});
  EXPECT_TRUE(condition_subsumed(inner, outer));
  EXPECT_FALSE(condition_subsumed(outer, inner));
  EXPECT_TRUE(condition_subsumed(outer, wild));
  EXPECT_FALSE(condition_subsumed(wild, outer));
  EXPECT_TRUE(condition_subsumed(inner, inner));
}

TEST(ConditionSubsumed, PartialOverlapIsNotSubsumption) {
  const Rule a({Interval(0, 5), Interval(0, 10)});
  const Rule b({Interval(3, 8), Interval(0, 10)});
  EXPECT_FALSE(condition_subsumed(a, b));
  EXPECT_FALSE(condition_subsumed(b, a));
}

TEST(ConditionSubsumed, WindowMismatchFalse) {
  const Rule a({Interval(0, 5)});
  const Rule b({Interval(0, 5), Interval(0, 5)});
  EXPECT_FALSE(condition_subsumed(a, b));
}

TEST(Compact, RemovesExactDuplicates) {
  RuleSystem system;
  system.add_rules({make_rule({Interval(0, 10)}, 5.0), make_rule({Interval(0, 10)}, 5.1),
                    make_rule({Interval(20, 30)}, 9.0)},
                   false, -1.0);
  CompactionReport report;
  const RuleSystem out = compact(system, report);
  EXPECT_EQ(report.duplicates_removed, 1u);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Compact, RemovesSubsumedWithAgreeingPrediction) {
  RuleSystem system;
  system.add_rules({make_rule({Interval(2, 3)}, 5.00),     // inner, agrees
                    make_rule({Interval(0, 10)}, 5.02)},   // outer
                   false, -1.0);
  CompactionReport report;
  CompactionOptions options;
  options.prediction_tolerance = 0.05;
  const RuleSystem out = compact(system, report, options);
  EXPECT_EQ(report.subsumed_removed, 1u);
  ASSERT_EQ(out.size(), 1u);
  // The survivor is the outer (general) rule.
  EXPECT_TRUE(out.rules()[0].genes()[0] == Interval(0, 10));
}

TEST(Compact, KeepsSubsumedWithDisagreeingPrediction) {
  // The whole point of local rules: a specialist inside a generalist's box
  // that predicts something different must survive.
  RuleSystem system;
  system.add_rules({make_rule({Interval(2, 3)}, 50.0),    // specialist
                    make_rule({Interval(0, 10)}, 5.0)},   // generalist
                   false, -1.0);
  CompactionReport report;
  const RuleSystem out = compact(system, report);
  EXPECT_EQ(report.subsumed_removed, 0u);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Compact, IdenticalBoxesKeepExactlyOne) {
  // Same acceptance set both ways with agreeing predictions: one survives
  // (not both removed — that would change behaviour).
  RuleSystem system;
  system.add_rules(
      {make_rule({Interval(0, 5)}, 3.0), make_rule({Interval(0, 5)}, 3.0)}, false, -1.0);
  CompactionReport report;
  const RuleSystem out = compact(system, report);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Compact, DropsUnfiredRulesOnlyWithReference) {
  const TimeSeries s(std::vector<double>{0, 1, 2, 3, 4, 5, 6, 7});
  const WindowDataset data(s, 2, 1);
  RuleSystem system;
  system.add_rules({make_rule({Interval(0, 7), Interval(0, 7)}, 1.0),
                    make_rule({Interval(100, 200), Interval(100, 200)}, 9.0)},
                   false, -1.0);
  CompactionReport no_ref_report;
  EXPECT_EQ(compact(system, no_ref_report).size(), 2u);  // nothing dropped without ref

  CompactionReport report;
  const RuleSystem out = compact(system, report, CompactionOptions{}, &data);
  EXPECT_EQ(report.unfired_removed, 1u);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Compact, ReportArithmeticConsistent) {
  RuleSystem system;
  system.add_rules({make_rule({Interval(0, 10)}, 5.0), make_rule({Interval(0, 10)}, 5.0),
                    make_rule({Interval(2, 3)}, 5.01), make_rule({Interval(50, 60)}, 7.0)},
                   false, -1.0);
  CompactionReport report;
  const RuleSystem out = compact(system, report);
  EXPECT_EQ(report.input_rules, 4u);
  EXPECT_EQ(report.output_rules(), out.size());
}

// The behaviour-preservation property on a real trained system: coverage
// does not drop and covered predictions move by at most the tolerance.
TEST(Compact, PreservesBehaviourOnTrainedSystem) {
  const auto mg = ef::series::make_paper_mackey_glass();
  const WindowDataset train(mg.train, 4, 1);

  ef::core::RuleSystemConfig cfg;
  cfg.evolution.population_size = 30;
  cfg.evolution.generations = 800;
  cfg.evolution.emax = 0.15;
  cfg.evolution.seed = 5;
  cfg.max_executions = 3;
  cfg.coverage_target_percent = 100.0;  // force several executions → duplicates
  const auto trained = ef::core::train(train, {.config = cfg});

  CompactionReport report;
  CompactionOptions options;
  options.prediction_tolerance = 0.02;
  const RuleSystem slim = compact(trained.system, report, options, &train);

  EXPECT_LT(slim.size(), trained.system.size());  // something was removed
  EXPECT_GE(slim.coverage_percent(train), trained.system.coverage_percent(train) - 1e-9);

  const auto before = trained.system.forecast_dataset(train);
  const auto after = slim.forecast_dataset(train);
  for (std::size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(before[i].has_value(), after[i].has_value()) << i;
    if (before[i]) {
      // Removing agreeing duplicates can shift the vote mean slightly; the
      // shift is bounded by the subsumption tolerance.
      EXPECT_NEAR(*before[i], *after[i], options.prediction_tolerance + 1e-9) << i;
    }
  }
}

}  // namespace
