// match_engine.hpp — the hot loop: which training windows does a rule match?
//
// Evaluating one offspring means scanning every sliding window of the
// training set against D interval genes — O(m·D) with m up to 45 000. The
// engine partitions the window range across the shared thread pool; chunks
// append into per-chunk buffers that are concatenated in order, so results
// are identical to the serial scan.
#pragma once

#include <cstddef>
#include <vector>

#include "core/dataset.hpp"
#include "core/rule.hpp"
#include "util/thread_pool.hpp"

namespace ef::core {

class MatchEngine {
 public:
  /// `pool` must outlive the engine; nullptr = use ThreadPool::shared().
  explicit MatchEngine(const WindowDataset& data, util::ThreadPool* pool = nullptr);

  [[nodiscard]] const WindowDataset& data() const noexcept { return data_; }

  /// Indices of all patterns the rule's conditional part accepts, ascending.
  [[nodiscard]] std::vector<std::size_t> match_indices(const Rule& rule) const;

  /// Just the count (skips building the index vector when only N_R matters).
  [[nodiscard]] std::size_t match_count(const Rule& rule) const;

  /// Sequential reference implementation (used by tests to cross-check the
  /// parallel path and by callers with tiny datasets).
  [[nodiscard]] std::vector<std::size_t> match_indices_serial(const Rule& rule) const;

 private:
  const WindowDataset& data_;
  util::ThreadPool* pool_;
};

}  // namespace ef::core
