// Tests for RuleSystem::forecast_batch and RuleIndex::forecast_batch: exact
// element-by-element agreement with single-window forecast across every
// aggregation mode, including abstention positions and vote counts.
#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <vector>

#include "core/rule_index.hpp"
#include "core/rule_system.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using ef::core::Aggregation;
using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleIndex;
using ef::core::RuleSystem;

constexpr Aggregation kAllAggregations[] = {
    Aggregation::kMean, Aggregation::kFitnessWeighted, Aggregation::kMedian,
    Aggregation::kBestRule, Aggregation::kInverseError};

Rule make_rule(std::vector<Interval> genes, std::vector<double> coeffs, double fitness,
               double error) {
  Rule r(std::move(genes));
  ef::core::PredictingPart part;
  part.fit.coeffs = std::move(coeffs);
  part.fit.mean_prediction = part.fit.coeffs.back();
  part.fit.max_abs_residual = error;
  part.matches = 7;
  part.fitness = fitness;
  r.set_predicting(part);
  return r;
}

/// A small overlapping rule set over [0,1]^3 with genuinely different
/// hyperplanes, so every aggregation mode produces distinct values.
RuleSystem make_system() {
  RuleSystem system;
  std::vector<Rule> rules;
  rules.push_back(make_rule({Interval(0.0, 0.5), Interval::wildcard(), Interval(0.0, 1.0)},
                            {0.3, -0.2, 0.1, 0.4}, 2.0, 0.05));
  rules.push_back(make_rule({Interval(0.2, 0.9), Interval(0.1, 0.8), Interval::wildcard()},
                            {-0.1, 0.5, 0.2, 0.1}, 3.5, 0.01));
  rules.push_back(make_rule({Interval::wildcard(), Interval(0.0, 0.6), Interval(0.3, 1.0)},
                            {0.0, 0.0, 1.0, 0.0}, 1.0, 0.2));
  rules.push_back(make_rule({Interval(0.6, 1.0), Interval(0.6, 1.0), Interval(0.6, 1.0)},
                            {0.1, 0.1, 0.1, 0.7}, 5.0, 0.005));
  system.add_rules(std::move(rules), /*discard_unfit=*/false, /*f_min=*/-1.0);
  return system;
}

/// Random probe windows over a slightly enlarged range so a good fraction of
/// positions abstain.
std::vector<double> make_probes(std::size_t n, std::size_t window) {
  ef::util::Rng rng(42);
  std::vector<double> flat;
  flat.reserve(n * window);
  for (std::size_t i = 0; i < n * window; ++i) {
    flat.push_back(rng.uniform(-0.2, 1.4));
  }
  return flat;
}

TEST(ForecastBatch, MatchesSingleForecastAllAggregations) {
  const RuleSystem system = make_system();
  const std::size_t window = 3;
  const std::size_t n = 200;
  const std::vector<double> flat = make_probes(n, window);

  for (const Aggregation how : kAllAggregations) {
    const auto batch = system.forecast_batch(flat, window, how);
    ASSERT_EQ(batch.size(), n);

    std::size_t abstentions = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const double> w(flat.data() + i * window, window);
      const auto single = system.forecast(w, how);
      ASSERT_EQ(batch[i].abstained, single.abstained) << "position " << i;
      if (!single.abstained) {
        EXPECT_EQ(batch[i].value, single.value) << "position " << i;  // bit-identical path
      } else {
        ++abstentions;
        EXPECT_EQ(batch[i].votes, 0u);
      }
      EXPECT_EQ(batch[i].votes, system.vote_count(w));
    }
    EXPECT_GT(abstentions, 0u) << "probe set should include abstaining windows";
    EXPECT_LT(abstentions, n) << "probe set should include covered windows";
  }
}

TEST(ForecastBatch, MatchesPlainMeanForecast) {
  const RuleSystem system = make_system();
  const std::size_t window = 3;
  const std::vector<double> flat = make_probes(64, window);
  const auto batch = system.forecast_batch(flat, window);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::span<const double> w(flat.data() + i * window, window);
    const auto single = system.forecast(w);  // the paper's mean path
    ASSERT_EQ(batch[i].abstained, single.abstained);
    if (!single.abstained) {
      EXPECT_EQ(batch[i].value, single.value);
    }
  }
}

TEST(ForecastBatch, IndexBatchMatchesSystemBatch) {
  const RuleSystem system = make_system();
  const RuleIndex index(system, 0.0, 1.0);
  const std::size_t window = 3;
  const std::vector<double> flat = make_probes(150, window);

  for (const Aggregation how : kAllAggregations) {
    const auto from_system = system.forecast_batch(flat, window, how);
    const auto from_index = index.forecast_batch(flat, window, how);
    ASSERT_EQ(from_system.size(), from_index.size());
    for (std::size_t i = 0; i < from_system.size(); ++i) {
      ASSERT_EQ(from_system[i].abstained, from_index[i].abstained) << "position " << i;
      if (!from_system[i].abstained) {
        EXPECT_EQ(from_system[i].value, from_index[i].value) << "position " << i;
      }
      EXPECT_EQ(from_system[i].votes, from_index[i].votes) << "position " << i;
    }
  }
}

TEST(ForecastBatch, ExplicitPoolMatchesSharedPool) {
  const RuleSystem system = make_system();
  ef::util::ThreadPool pool(2);
  const std::vector<double> flat = make_probes(100, 3);
  const auto with_pool = system.forecast_batch(flat, 3, Aggregation::kMean, &pool);
  const auto without = system.forecast_batch(flat, 3, Aggregation::kMean);
  ASSERT_EQ(with_pool.size(), without.size());
  for (std::size_t i = 0; i < with_pool.size(); ++i) {
    ASSERT_EQ(with_pool[i].abstained, without[i].abstained);
    if (!without[i].abstained) {
      EXPECT_EQ(with_pool[i].value, without[i].value);
    }
  }
}

TEST(ForecastBatch, EmptyBatchAndValidation) {
  const RuleSystem system = make_system();
  EXPECT_TRUE(system.forecast_batch({}, 3).empty());
  const std::vector<double> flat{0.1, 0.2, 0.3, 0.4};
  EXPECT_THROW((void)system.forecast_batch(flat, 0), std::invalid_argument);
  EXPECT_THROW((void)system.forecast_batch(flat, 3), std::invalid_argument);

  const RuleIndex index(system, 0.0, 1.0);
  EXPECT_THROW((void)index.forecast_batch(flat, 0), std::invalid_argument);
  EXPECT_THROW((void)index.forecast_batch(flat, 3), std::invalid_argument);
}

TEST(ForecastBatch, EmptySystemAbstainsEverywhere) {
  const RuleSystem system;
  const std::vector<double> flat{0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  const auto batch = system.forecast_batch(flat, 3, Aggregation::kMean);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].abstained);
  EXPECT_TRUE(batch[1].abstained);
  EXPECT_EQ(batch[0].votes, 0u);
  EXPECT_EQ(batch[1].votes, 0u);
}

}  // namespace
