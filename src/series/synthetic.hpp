// synthetic.hpp — small parametric test-signal generators.
//
// The controlled signals used throughout the test suite and handy for users
// prototyping against the library: noisy sinusoids, AR(p) processes,
// regime-switching composites. Everything is seeded and deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "series/timeseries.hpp"

namespace ef::series {

struct SineParams {
  double amplitude = 1.0;
  double period = 25.0;  ///< in samples
  double phase = 0.0;
  double offset = 0.0;
  double noise_sd = 0.0;
  std::uint64_t seed = 1;
};

/// offset + amplitude·sin(2π t/period + phase) + N(0, noise_sd).
[[nodiscard]] TimeSeries generate_sine(std::size_t count, const SineParams& params = {});

struct ArParams {
  /// AR coefficients φ₁…φ_p (x_t = Σ φ_k x_{t−k} + ε). Empty = white noise.
  std::vector<double> phi{0.8};
  double noise_sd = 1.0;
  double offset = 0.0;
  std::size_t burn_in = 200;
  std::uint64_t seed = 2;
};

/// AR(p) process with Gaussian innovations; burn-in discarded so the output
/// starts near the stationary regime. Throws std::invalid_argument when
/// count == 0 or noise_sd < 0.
[[nodiscard]] TimeSeries generate_ar(std::size_t count, const ArParams& params = {});

struct RegimeSwitchParams {
  /// Mean dwell time per regime, in samples (geometric switching).
  double mean_dwell = 300.0;
  /// Per-regime (amplitude, period) pairs cycled through on each switch.
  std::vector<std::pair<double, double>> regimes{{1.0, 20.0}, {2.5, 7.0}};
  double noise_sd = 0.05;
  std::uint64_t seed = 3;
};

/// Piecewise-sinusoidal series that switches dynamics at random instants —
/// the "local behaviours" testbed: each regime wants its own rules.
/// Throws when regimes is empty or mean_dwell <= 1.
[[nodiscard]] TimeSeries generate_regime_switch(std::size_t count,
                                                const RegimeSwitchParams& params = {});

}  // namespace ef::series
