// Tests for baselines/persistence.hpp and baselines/holt_winters.hpp:
// exactness on the patterns they model, fallbacks, parameter search.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "baselines/holt_winters.hpp"
#include "baselines/persistence.hpp"
#include "core/dataset.hpp"
#include "series/metrics.hpp"
#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

namespace bl = ef::baselines;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

TimeSeries pure_sine(std::size_t n, std::size_t period) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) /
                    static_cast<double>(period));
  }
  return TimeSeries(std::move(v));
}

// ---- persistence ------------------------------------------------------------

TEST(Persistence, PredictsLastWindowValue) {
  const WindowDataset data(pure_sine(100, 20), 5, 3);
  bl::Persistence model;
  model.fit(data);
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0, 9.5};
  EXPECT_DOUBLE_EQ(model.predict(w), 9.5);
}

TEST(Persistence, ExactOnConstantSeries) {
  const WindowDataset data(TimeSeries(std::vector<double>(60, 4.2)), 5, 7);
  bl::Persistence model;
  model.fit(data);
  const auto preds = model.predict_all(data);
  for (std::size_t i = 0; i < data.count(); ++i) EXPECT_DOUBLE_EQ(preds[i], 4.2);
}

TEST(Persistence, ContractErrors) {
  bl::Persistence model;
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0}), std::logic_error);
  const WindowDataset data(pure_sine(50, 10), 3, 1);
  model.fit(data);
  EXPECT_THROW((void)model.predict(std::vector<double>{}), std::invalid_argument);
}

TEST(SeasonalPersistence, ExactOnPurePeriodicSeries) {
  // Window long enough to reach one full period back from the target.
  const std::size_t period = 12;
  const WindowDataset data(pure_sine(120, period), 16, 5);
  bl::SeasonalPersistence model(period);
  model.fit(data);
  const auto preds = model.predict_all(data);
  for (std::size_t i = 0; i < data.count(); ++i) {
    EXPECT_NEAR(preds[i], data.target(i), 1e-9) << i;
  }
}

TEST(SeasonalPersistence, BeatsPlainPersistenceOnSeasonalData) {
  const std::size_t period = 12;
  // Noisy seasonal series; horizon half a period so persistence is maximally
  // wrong and seasonal persistence is right.
  ef::util::Rng rng(3);
  std::vector<double> v(240);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / period) +
           rng.normal(0.0, 0.02);
  }
  const WindowDataset data(TimeSeries(std::move(v)), 16, 6);

  bl::SeasonalPersistence seasonal(period);
  seasonal.fit(data);
  bl::Persistence naive;
  naive.fit(data);

  std::vector<double> actual;
  for (std::size_t i = 0; i < data.count(); ++i) actual.push_back(data.target(i));
  const double seasonal_rmse = ef::series::rmse(actual, seasonal.predict_all(data));
  const double naive_rmse = ef::series::rmse(actual, naive.predict_all(data));
  EXPECT_LT(seasonal_rmse, 0.3 * naive_rmse);
}

TEST(SeasonalPersistence, ShortWindowFallsBackToPersistence) {
  const std::size_t period = 50;  // unreachable inside a 4-wide window
  const WindowDataset data(pure_sine(200, period), 4, 3);
  bl::SeasonalPersistence model(period);
  model.fit(data);
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(model.predict(w), 4.0);
}

TEST(SeasonalPersistence, ZeroPeriodThrows) {
  EXPECT_THROW(bl::SeasonalPersistence(0), std::invalid_argument);
}

// ---- Holt-Winters -----------------------------------------------------------

TEST(HoltWinters, ConfigValidation) {
  bl::HoltWintersConfig bad;
  bad.period = 0;
  EXPECT_THROW(bl::HoltWinters{bad}, std::invalid_argument);
  bad = {};
  bad.alpha = 1.5;
  EXPECT_THROW(bl::HoltWinters{bad}, std::invalid_argument);
  bad = {};
  bad.grid_points = 0;
  EXPECT_THROW(bl::HoltWinters{bad}, std::invalid_argument);
}

TEST(HoltWinters, PredictBeforeFitThrows) {
  bl::HoltWinters model;
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0, 2.0}), std::logic_error);
}

TEST(HoltWinters, NearExactOnLinearTrend) {
  // y = 0.5·t: level+trend smoothing should extrapolate almost perfectly.
  std::vector<double> v(200);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 0.5 * static_cast<double>(i);
  const WindowDataset data(TimeSeries(std::move(v)), 24, 4);
  bl::HoltWintersConfig cfg;
  cfg.period = 12;
  bl::HoltWinters model(cfg);
  model.fit(data);
  std::vector<double> actual;
  for (std::size_t i = 0; i < data.count(); ++i) actual.push_back(data.target(i));
  const double err = ef::series::rmse(actual, model.predict_all(data));
  EXPECT_LT(err, 0.3);  // target step is 2.0 per window shift
}

TEST(HoltWinters, CapturesSeasonality) {
  const std::size_t period = 12;
  const WindowDataset data(pure_sine(240, period), 36, 6);
  bl::HoltWintersConfig cfg;
  cfg.period = period;
  bl::HoltWinters model(cfg);
  model.fit(data);
  std::vector<double> actual;
  for (std::size_t i = 0; i < data.count(); ++i) actual.push_back(data.target(i));
  const double err = ef::series::rmse(actual, model.predict_all(data));
  // Without the seasonal term this series is unpredictable at τ=6 (error
  // ~ O(1)); with it the error must be far smaller.
  EXPECT_LT(err, 0.25);
}

TEST(HoltWinters, GridSearchSelectsInRange) {
  const WindowDataset data(pure_sine(240, 12), 24, 1);
  bl::HoltWinters model;
  model.fit(data);
  EXPECT_GE(model.alpha(), 0.05);
  EXPECT_LE(model.alpha(), 0.95);
  EXPECT_GE(model.beta(), 0.05);
  EXPECT_LE(model.beta(), 0.95);
  EXPECT_GE(model.gamma(), 0.05);
  EXPECT_LE(model.gamma(), 0.95);
}

TEST(HoltWinters, PinnedParametersRespected) {
  bl::HoltWintersConfig cfg;
  cfg.alpha = 0.42;
  cfg.beta = 0.07;
  cfg.gamma = 0.33;
  bl::HoltWinters model(cfg);
  const WindowDataset data(pure_sine(120, 12), 24, 1);
  model.fit(data);
  EXPECT_DOUBLE_EQ(model.alpha(), 0.42);
  EXPECT_DOUBLE_EQ(model.beta(), 0.07);
  EXPECT_DOUBLE_EQ(model.gamma(), 0.33);
}

TEST(HoltWinters, TinyWindowDoesNotCrash) {
  const WindowDataset data(pure_sine(60, 12), 2, 1);
  bl::HoltWinters model;
  model.fit(data);
  EXPECT_TRUE(std::isfinite(model.predict(std::vector<double>{0.5, 0.6})));
  EXPECT_TRUE(std::isfinite(model.predict(std::vector<double>{0.5})));
}

}  // namespace
