#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <string>

#include "obs/macros.hpp"

namespace ef::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc == 0 ? 1 : hc;
  }
  // Register the pool-wide instruments eagerly so a run report always shows
  // them, even when every parallel_for of the run decided to stay inline.
  EVOFORECAST_COUNT("pool.tasks", 0);
  EVOFORECAST_COUNT("pool.busy_us", 0);
  EVOFORECAST_COUNT("pool.parallel_for.inline", 0);
  EVOFORECAST_COUNT("pool.parallel_for.pooled", 0);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
#if EVOFORECAST_OBS_ENABLED
  // Per-worker busy-time counter, registered once per worker thread. The
  // name is dynamic, so bypass the static-caching macro and hold the
  // reference for the worker's lifetime (registry instruments are stable).
  obs::Counter& busy_us = obs::Registry::global().counter(
      "pool.worker" + std::to_string(worker_index) + ".busy_us");
#else
  (void)worker_index;
#endif
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
#if EVOFORECAST_OBS_ENABLED
    const auto task_start = std::chrono::steady_clock::now();
#endif
    task();
#if EVOFORECAST_OBS_ENABLED
    const double task_us = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - task_start)
                               .count();
    const auto whole_us = static_cast<std::uint64_t>(task_us);
    busy_us.add(whole_us);
    EVOFORECAST_COUNT("pool.tasks", 1);
    EVOFORECAST_COUNT("pool.busy_us", whole_us);
    EVOFORECAST_HISTOGRAM("pool.task_us", task_us);
#endif
  }
}

void ThreadPool::parallel_for_impl(std::size_t begin, std::size_t end,
                                   FunctionRef<void(std::size_t, std::size_t)> body,
                                   std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(grain, 1);

  // Small ranges or a degenerate pool: run inline, no synchronisation.
  if (n <= grain || workers_.size() <= 1) {
    EVOFORECAST_COUNT("pool.parallel_for.inline", 1);
    body(begin, end);
    return;
  }
  EVOFORECAST_COUNT("pool.parallel_for.pooled", 1);

  const std::size_t max_chunks = (n + grain - 1) / grain;
  const std::size_t chunks = std::min(workers_.size(), max_chunks);
  const std::size_t width = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{chunks};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  {
    const std::lock_guard lock(mutex_);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t chunk_begin = begin + c * width;
      const std::size_t chunk_end = std::min(end, chunk_begin + width);
      tasks_.emplace([&, body, chunk_begin, chunk_end] {
        try {
          body(chunk_begin, chunk_end);
        } catch (...) {
          const std::lock_guard error_lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          const std::lock_guard done_lock(done_mutex);
          done_cv.notify_one();
        }
      });
    }
  }
  task_ready_.notify_all();

  std::unique_lock done_lock(done_mutex);
  done_cv.wait(done_lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });

  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ef::util
