// function_ref.hpp — non-owning, non-allocating callable reference.
//
// std::function type-erases with ownership, which costs an allocation for
// captures beyond the small-buffer size. The thread pool's parallel_for is
// called from the match engine's hot path with reference-capturing lambdas,
// and it blocks until the work completes — so the callee never outlives the
// call and ownership is pure overhead. FunctionRef erases to a {object
// pointer, trampoline} pair on the stack instead (the same shape as
// llvm::function_ref / C++26 std::function_ref).
//
// Lifetime rule: a FunctionRef must not outlive the callable it was built
// from. Only pass it down the stack; never store it.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace ef::util {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, FunctionRef>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function_ref — call sites pass lambdas directly.
  FunctionRef(F&& callable) noexcept
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(callable)))),
        call_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*call_)(void*, Args...);
};

}  // namespace ef::util
