#include "series/venice.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.hpp"

namespace ef::series {

std::vector<TidalConstituent> default_venice_constituents() {
  // Amplitudes (cm) and periods (h) loosely follow published harmonic
  // analyses of the northern Adriatic; phases are arbitrary but fixed.
  return {
      {23.0, 12.4206, 0.00},  // M2 principal lunar semidiurnal
      {14.0, 12.0000, 0.70},  // S2 principal solar semidiurnal
      {18.0, 23.9345, 1.30},  // K1 lunisolar diurnal
      {5.0, 25.8193, 2.10},   // O1 principal lunar diurnal
      {4.0, 12.6583, 0.40},   // N2 larger lunar elliptic
      {3.0, 8765.82, 0.00},   // Sa solar annual (seasonal msl cycle)
  };
}

TimeSeries generate_venice(std::size_t hours, const VeniceParams& params) {
  if (hours == 0) throw std::invalid_argument("generate_venice: hours must be > 0");

  const std::vector<TidalConstituent> constituents =
      params.constituents.empty() ? default_venice_constituents() : params.constituents;

  util::Rng rng(params.seed);
  // Independent streams per component so changing e.g. the storm rate does
  // not reshuffle the surge realisation.
  util::Rng surge_rng = rng.fork();
  util::Rng storm_rng = rng.fork();
  util::Rng noise_rng = rng.fork();

  // --- storm events -------------------------------------------------------
  // Poisson arrivals via exponential inter-arrival times; materialise the
  // full event list up front, then evaluate pulses additively.
  struct Storm {
    double start_hour;
    double amplitude;
  };
  std::vector<Storm> storms;
  if (params.storm_rate_per_hour > 0.0) {
    double t = 0.0;
    for (;;) {
      // Exponential(rate) inter-arrival; guard against log(0).
      const double u = std::max(storm_rng.uniform(), 1e-12);
      t += -std::log(u) / params.storm_rate_per_hour;
      if (t >= static_cast<double>(hours)) break;
      storms.push_back(
          {t, storm_rng.uniform(params.storm_amp_min_cm, params.storm_amp_max_cm)});
    }
  }

  // --- assemble -----------------------------------------------------------
  std::vector<double> level(hours, 0.0);

  // Harmonic tide + mean sea level.
  for (std::size_t h = 0; h < hours; ++h) {
    double tide = params.mean_sea_level_cm;
    for (const auto& c : constituents) {
      tide += c.amplitude_cm *
              std::cos(2.0 * std::numbers::pi * static_cast<double>(h) / c.period_hours +
                       c.phase_rad);
    }
    level[h] = tide;
  }

  // AR(2) surge. Burn in 500 samples so the process starts in its stationary
  // regime rather than at zero.
  {
    double x1 = 0.0;
    double x2 = 0.0;
    for (int burn = 0; burn < 500; ++burn) {
      const double x = params.surge_phi1 * x1 + params.surge_phi2 * x2 +
                       surge_rng.normal(0.0, params.surge_noise_cm);
      x2 = x1;
      x1 = x;
    }
    for (std::size_t h = 0; h < hours; ++h) {
      const double x = params.surge_phi1 * x1 + params.surge_phi2 * x2 +
                       surge_rng.normal(0.0, params.surge_noise_cm);
      x2 = x1;
      x1 = x;
      level[h] += x;
    }
  }

  // Storm pulses. Each pulse affects a bounded window (rise + 8 decay
  // constants covers >99.9 % of its mass), so cost stays linear.
  for (const auto& storm : storms) {
    const double window = params.storm_rise_hours + 8.0 * params.storm_decay_hours;
    const auto begin = static_cast<std::size_t>(std::max(0.0, storm.start_hour));
    const auto end =
        std::min(hours, static_cast<std::size_t>(storm.start_hour + window) + 1);
    for (std::size_t h = begin; h < end; ++h) {
      const double dt = static_cast<double>(h) - storm.start_hour;
      if (dt < 0.0) continue;
      level[h] += storm.amplitude * (1.0 - std::exp(-dt / params.storm_rise_hours)) *
                  std::exp(-dt / params.storm_decay_hours);
    }
  }

  // Gauge noise.
  if (params.gauge_noise_cm > 0.0) {
    for (std::size_t h = 0; h < hours; ++h) {
      level[h] += noise_rng.normal(0.0, params.gauge_noise_cm);
    }
  }

  return TimeSeries(std::move(level), "venice_lagoon");
}

VeniceExperiment make_paper_venice(std::size_t train_hours, std::size_t validation_hours,
                                   const VeniceParams& params) {
  if (train_hours == 0 || validation_hours == 0) {
    throw std::invalid_argument("make_paper_venice: both ranges must be non-empty");
  }
  const TimeSeries full = generate_venice(train_hours + validation_hours, params);
  return VeniceExperiment{full.slice(0, train_hours),
                          full.slice(train_hours, train_hours + validation_hours)};
}

}  // namespace ef::series
