// evoforecast.hpp — umbrella header for the evoforecast library.
//
// evoforecast reproduces "Time Series Forecasting by means of Evolutionary
// Algorithms" (Luque, Valls, Isasi — IPPS 2007): a Michigan-style classifier
// system evolving local prediction rules over sliding windows, with
// coverage-driven multi-execution training and abstaining prediction.
//
// Typical use:
//
//   #include "evoforecast.hpp"
//
//   const auto mg = ef::series::make_paper_mackey_glass();
//   const ef::core::WindowDataset train(mg.train, 4, 50, 6);
//   ef::core::RuleSystemConfig config;          // paper defaults
//   config.evolution.emax = 0.14;               // per-rule error budget
//   const auto result = ef::core::train(train, {.config = config});
//   const auto p = result.system.forecast(window);  // core::Prediction
//   if (!p.abstained) use(p.value, p.votes);
//
// Training schedules (sequential vs island-parallel) are one entry point:
// ef::core::train(data, options) — see TrainOptions. The match hot path runs
// on a pluggable backend (core/match_backend.hpp): scalar reference, SoA
// vectorized, or SoA + selectivity prefilter (default); all three produce
// bit-identical match sets, so the choice is purely about speed. Override
// per-config via EvolutionConfig::match_backend or process-wide with the
// EVOFORECAST_MATCH_BACKEND environment variable.
//
// Layering (each header is also individually includable):
//   obs/       metrics registry, scoped tracing, run reports
//   util/      seeded RNG, thread pool, running stats, CLI
//   series/    data containers, generators, metrics, transforms, analysis
//   core/      the paper's rule system + extensions (tuning, backtesting,
//              compaction, aggregation, multistep, indexing, alt engines)
//   baselines/ comparator models (MLP, Elman, RAN, MRAN, AR(MA), k-NN,
//              persistence, Holt-Winters)
//
// The serving layer (ef::serve — model store, micro-batcher, TCP service)
// is deliberately NOT included here: it spawns threads and opens sockets
// that offline training/evaluation never needs. Opt in explicitly with
// #include "evoforecast_serve.hpp".
#pragma once

// obs
#include "obs/export.hpp"      // IWYU pragma: export
#include "obs/macros.hpp"      // IWYU pragma: export
#include "obs/metrics.hpp"     // IWYU pragma: export
#include "obs/run_report.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"       // IWYU pragma: export

// util
#include "util/cli.hpp"            // IWYU pragma: export
#include "util/rng.hpp"            // IWYU pragma: export
#include "util/running_stats.hpp"  // IWYU pragma: export
#include "util/thread_pool.hpp"    // IWYU pragma: export

// series
#include "series/analysis.hpp"      // IWYU pragma: export
#include "series/csv.hpp"           // IWYU pragma: export
#include "series/lorenz.hpp"        // IWYU pragma: export
#include "series/mackey_glass.hpp"  // IWYU pragma: export
#include "series/metrics.hpp"       // IWYU pragma: export
#include "series/significance.hpp"  // IWYU pragma: export
#include "series/sunspot.hpp"       // IWYU pragma: export
#include "series/synthetic.hpp"     // IWYU pragma: export
#include "series/timeseries.hpp"    // IWYU pragma: export
#include "series/transforms.hpp"    // IWYU pragma: export
#include "series/venice.hpp"        // IWYU pragma: export

// core
#include "core/aggregation.hpp"   // IWYU pragma: export
#include "core/backtest.hpp"      // IWYU pragma: export
#include "core/compaction.hpp"    // IWYU pragma: export
#include "core/config.hpp"        // IWYU pragma: export
#include "core/crossover.hpp"     // IWYU pragma: export
#include "core/crowding.hpp"      // IWYU pragma: export
#include "core/dataset.hpp"       // IWYU pragma: export
#include "core/evolution.hpp"     // IWYU pragma: export
#include "core/fitness.hpp"       // IWYU pragma: export
#include "core/generational.hpp"  // IWYU pragma: export
#include "core/init.hpp"          // IWYU pragma: export
#include "core/interval.hpp"      // IWYU pragma: export
#include "core/introspection.hpp" // IWYU pragma: export
#include "core/match_backend.hpp" // IWYU pragma: export
#include "core/match_engine.hpp"  // IWYU pragma: export
#include "core/multistep.hpp"     // IWYU pragma: export
#include "core/mutation.hpp"      // IWYU pragma: export
#include "core/pittsburgh.hpp"    // IWYU pragma: export
#include "core/prediction.hpp"    // IWYU pragma: export
#include "core/regression.hpp"    // IWYU pragma: export
#include "core/rule.hpp"          // IWYU pragma: export
#include "core/rule_index.hpp"    // IWYU pragma: export
#include "core/rule_system.hpp"   // IWYU pragma: export
#include "core/selection.hpp"     // IWYU pragma: export
#include "core/telemetry.hpp"     // IWYU pragma: export
#include "core/tuning.hpp"        // IWYU pragma: export

// baselines
#include "baselines/ar.hpp"            // IWYU pragma: export
#include "baselines/arma.hpp"          // IWYU pragma: export
#include "baselines/elman.hpp"         // IWYU pragma: export
#include "baselines/forecaster.hpp"    // IWYU pragma: export
#include "baselines/holt_winters.hpp"  // IWYU pragma: export
#include "baselines/knn.hpp"           // IWYU pragma: export
#include "baselines/linalg.hpp"        // IWYU pragma: export
#include "baselines/mlp.hpp"           // IWYU pragma: export
#include "baselines/mran.hpp"          // IWYU pragma: export
#include "baselines/persistence.hpp"   // IWYU pragma: export
#include "baselines/ran.hpp"           // IWYU pragma: export
