// Shape-regression tests: the qualitative claims of the paper's three
// tables, asserted at reduced scale through the experiments library. These
// are the repository's contract — if a refactor silently breaks a
// reproduction (rule system stops beating a comparator, coverage collapses),
// ctest fails rather than a human noticing a bench table drifted.
#include "experiments/experiments.hpp"

#include <gtest/gtest.h>

namespace {

namespace ex = ef::experiments;

// ---- Table 1 (Venice) -------------------------------------------------------

ex::VeniceRowConfig venice_small(std::size_t horizon) {
  ex::VeniceRowConfig config;
  config.horizon = horizon;
  config.train_hours = 4000;
  config.validation_hours = 1000;
  config.generations = 3000;
  config.max_executions = 6;
  config.mlp_epochs = 20;
  return config;
}

TEST(TableShapes, VeniceShortHorizonRuleSystemCompetitive) {
  const auto row = ex::run_venice_row(venice_small(1));
  // Coverage band: near-complete at tau=1 (paper: 91.3 %).
  EXPECT_GT(row.rs.coverage_percent, 85.0);
  // Who-wins: RS <= MLP (paper: near-tie at tau=1, RS wins beyond).
  EXPECT_LE(row.rs.rmse, row.rmse_mlp * 1.10);
  // Sanity: errors in centimetres, not garbage.
  EXPECT_GT(row.rs.rmse, 0.1);
  EXPECT_LT(row.rs.rmse, 20.0);
}

TEST(TableShapes, VeniceLongHorizonRuleSystemBeatsMlp) {
  const auto row = ex::run_venice_row(venice_small(24));
  EXPECT_GT(row.rs.coverage_percent, 80.0);  // paper: 99.3 %
  EXPECT_LT(row.rs.rmse, row.rmse_mlp);      // paper: 8.70 vs 11.64
  // Errors grow with the horizon (compare against tau=1 implicitly via a
  // loose absolute band).
  EXPECT_GT(row.rs.rmse, 5.0);
}

TEST(TableShapes, VeniceEmaxScheduleIsMonotoneAndSaturating) {
  double last = 0.0;
  for (const std::size_t tau : {1u, 4u, 12u, 24u, 48u, 96u}) {
    const double emax = ex::venice_emax_schedule(tau);
    EXPECT_GT(emax, last);
    last = emax;
  }
  EXPECT_LT(last, 60.0);  // saturates
}

// ---- Table 2 (Mackey-Glass) -------------------------------------------------

TEST(TableShapes, MackeyGlassRuleSystemBeatsRbfNetworks) {
  ex::MackeyGlassRowConfig config;
  config.horizon = 50;
  config.generations = 8000;
  const auto row = ex::run_mackey_glass_row(config);
  // Paper's signature ~78 % coverage operating point (band 70-95 at small
  // scale).
  EXPECT_GT(row.rs.coverage_percent, 70.0);
  EXPECT_LT(row.rs.coverage_percent, 95.0);
  // Who-wins at the cited comparators' budget.
  EXPECT_LT(row.rs.nmse, row.nmse_ran);
  EXPECT_LT(row.rs.nmse, row.nmse_mran);
  // Absolute band: far better than the mean predictor.
  EXPECT_LT(row.rs.nmse, 0.2);
}

TEST(TableShapes, MackeyGlassLongerHorizonIsHarder) {
  ex::MackeyGlassRowConfig near;
  near.horizon = 50;
  near.generations = 6000;
  ex::MackeyGlassRowConfig far = near;
  far.horizon = 85;
  const auto row_near = ex::run_mackey_glass_row(near);
  const auto row_far = ex::run_mackey_glass_row(far);
  EXPECT_GT(row_far.rs.nmse, 0.5 * row_near.rs.nmse);  // no free lunch at 85
}

// ---- Table 3 (sunspots) -----------------------------------------------------

TEST(TableShapes, SunspotCoverageHighAndErrorsOrdered) {
  ex::SunspotRowConfig config;
  config.horizon = 4;
  config.generations = 6000;
  const auto row = ex::run_sunspot_row(config);
  EXPECT_GT(row.rs.coverage_percent, 90.0);  // paper: 97.6 %
  // RS within striking distance of (usually better than) the MLP at tau=4.
  EXPECT_LT(row.galvan_rs, row.galvan_mlp * 1.15);
  EXPECT_GT(row.galvan_rs, 0.0);
}

TEST(TableShapes, SunspotErrorGrowsWithHorizon) {
  ex::SunspotRowConfig near;
  near.horizon = 1;
  near.generations = 5000;
  ex::SunspotRowConfig far = near;
  far.horizon = 12;
  const auto row_near = ex::run_sunspot_row(near);
  const auto row_far = ex::run_sunspot_row(far);
  EXPECT_GT(row_far.galvan_rs, row_near.galvan_rs);
  EXPECT_GT(row_far.galvan_mlp, row_near.galvan_mlp);
}

}  // namespace
