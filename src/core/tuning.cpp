#include "core/tuning.hpp"

#include <stdexcept>

#include "core/rule_system.hpp"

namespace ef::core {
namespace {

/// Training coverage of a short pilot run at the given EMAX.
[[nodiscard]] double pilot_coverage(const WindowDataset& train, const EvolutionConfig& base,
                                    const EmaxTuningOptions& options, double emax,
                                    util::ThreadPool* pool) {
  RuleSystemConfig cfg;
  cfg.evolution = base;
  cfg.evolution.emax = emax;
  cfg.evolution.generations = options.pilot_generations;
  cfg.max_executions = options.pilot_executions;
  cfg.coverage_target_percent = options.coverage_target_percent;
  return ef::core::train(train, {.config = cfg, .pool = pool}).train_coverage_percent;
}

}  // namespace

EmaxTuningResult tune_emax(const WindowDataset& train, const EvolutionConfig& base,
                           const EmaxTuningOptions& options, util::ThreadPool* pool) {
  const double range = train.target_max() - train.target_min();
  if (range <= 0.0) {
    throw std::invalid_argument("tune_emax: constant-target dataset, nothing to tune");
  }
  if (options.lo_fraction <= 0.0 || options.hi_fraction <= options.lo_fraction) {
    throw std::invalid_argument("tune_emax: need 0 < lo_fraction < hi_fraction");
  }
  if (options.coverage_target_percent <= 0.0 || options.coverage_target_percent > 100.0) {
    throw std::invalid_argument("tune_emax: coverage target out of (0, 100]");
  }

  EmaxTuningResult result;
  double lo = options.lo_fraction * range;
  double hi = options.hi_fraction * range;

  const auto probe = [&](double emax) {
    const double coverage = pilot_coverage(train, base, options, emax, pool);
    result.probes.emplace_back(emax, coverage);
    return coverage;
  };

  // If even the widest budget misses the target, return it (best possible).
  double hi_coverage = probe(hi);
  if (hi_coverage < options.coverage_target_percent) {
    result.emax = hi;
    result.achieved_coverage_percent = hi_coverage;
    return result;
  }
  // If the tightest budget already reaches the target, no search needed.
  const double lo_coverage = probe(lo);
  if (lo_coverage >= options.coverage_target_percent) {
    result.emax = lo;
    result.achieved_coverage_percent = lo_coverage;
    return result;
  }

  // Invariant: coverage(lo) < target <= coverage(hi). Bisect on EMAX.
  double best_emax = hi;
  double best_coverage = hi_coverage;
  for (std::size_t step = 0; step < options.bisection_steps; ++step) {
    const double mid = 0.5 * (lo + hi);
    const double coverage = probe(mid);
    if (coverage >= options.coverage_target_percent) {
      best_emax = mid;
      best_coverage = coverage;
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.emax = best_emax;
  result.achieved_coverage_percent = best_coverage;
  return result;
}

}  // namespace ef::core
