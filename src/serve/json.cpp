#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace ef::serve::json {
namespace {

struct ParseError {
  std::string message;
};

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Value parse() {
    Value v = value(/*depth=*/0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError{what + " at byte " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value(std::size_t depth) {
    if (depth > options_.max_depth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return Value{string()};
      case 't': return keyword("true", Value{true});
      case 'f': return keyword("false", Value{false});
      case 'n': return keyword("null", Value{nullptr});
      default: return Value{number()};
    }
  }

  Value keyword(std::string_view word, Value result) {
    if (text_.substr(pos_, word.size()) != word) fail("bad literal");
    pos_ += word.size();
    return result;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': fail("\\u escapes not supported by this protocol");
        default: fail("bad escape");
      }
    }
  }

  double number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    if (!std::isfinite(v)) fail("non-finite number");
    return v;
  }

  Value array(std::size_t depth) {
    expect('[');
    Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(items)};
    }
    for (;;) {
      items.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Value{std::move(items)};
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value object(std::size_t depth) {
    expect('{');
    Object fields;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(fields)};
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      // Reject duplicates outright: last-one-wins would silently discard a
      // request field, and the caller has no way to notice.
      const auto [it, inserted] = fields.emplace(std::move(key), Value{nullptr});
      if (!inserted) fail("duplicate key \"" + it->first + "\"");
      it->second = value(depth + 1);
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Value{std::move(fields)};
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  ParseOptions options_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string& error,
                           const ParseOptions& options) {
  try {
    return Parser(text, options).parse();
  } catch (const ParseError& e) {
    error = e.message;
    return std::nullopt;
  }
}

}  // namespace ef::serve::json
