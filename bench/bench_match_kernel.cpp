// bench_match_kernel — match-backend throughput on Mackey-Glass (D=4, τ=6).
//
// Trains a real rule system on a prefix of a long Mackey-Glass series
// (deterministic seed → identical rule sets across runs), then measures
// single-threaded match throughput of every MatchBackend sweeping the full
// rule set over the full dataset. Before timing, every backend's match set
// is checked index-for-index against the scalar serial reference: the
// backends' contract is *bit-identical* match sets, so any divergence is a
// correctness bug and the bench exits non-zero — speed numbers for wrong
// answers are worthless.
//
// A second, end-to-end section times the *training path*: the same
// fixed-seed generational run with the pre-batching per-rule fitness loop
// vs the rule-major batched fitness path. The two runs must serialise to
// byte-identical rule systems (the fitness wiring is bit-exact, not just
// the kernels), and the ratio is reported as train_speedup.
//
// Output: a human-readable table plus (via --json) a machine-readable
// report with per-backend windows/s, speedups vs scalar, and the train
// section. CI runs --quick and diffs against the committed baseline
// BENCH_match.json with scripts/check_match_bench.py.
//
// Flags:
//   --quick         scaled-down series/training/reps (CI smoke)
//   --series N      series length                (default 120000 / 20000 quick)
//   --generations N per-execution budget         (default 3000 / 300 quick)
//   --executions N  training executions unioned  (default 3 / 1 quick)
//   --reps N        timed sweeps per backend     (default 5 / 7 quick)
//   --seed S        training seed                (default 7)
//   --no-train-path skip the end-to-end train comparison
//   --json PATH     write the JSON report
//   --trace-out PATH  write the training + sweep timeline as Chrome
//                     trace-event JSON (arms tracing at rate 1.0)
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/match_backend.hpp"
#include "obs/build_info.hpp"
#include "obs/timeline.hpp"
#include "obs/timeline_export.hpp"
#include "core/generational.hpp"
#include "core/match_engine.hpp"
#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using ef::core::MatchBackend;
using ef::core::MatchEngine;
using ef::core::Rule;
using ef::core::WindowDataset;

struct BackendResult {
  MatchBackend backend = MatchBackend::kScalar;
  double seconds = 0.0;  ///< best (minimum) single-sweep wall time
  double windows_per_sec = 0.0;
  std::size_t matched = 0;  ///< total matches over one sweep (sanity anchor)
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One full-ruleset sweep under `engine`. kRuleMajor goes through the
/// batched entry point (that IS its sweep shape); the per-rule backends loop
/// match_indices. Returns total matches (anchors the sweep against dead-code
/// elimination and sanity-checks reps against each other).
std::size_t sweep(const MatchEngine& engine, const std::vector<Rule>& rules) {
  std::size_t matched = 0;
  if (engine.backend() == MatchBackend::kRuleMajor) {
    const auto all = engine.match_all(rules);
    for (const auto& m : all) matched += m.size();
  } else {
    for (const Rule& rule : rules) matched += engine.match_indices(rule).size();
  }
  return matched;
}

}  // namespace

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick");
  const auto series_len =
      static_cast<std::size_t>(cli.get_int("series", quick ? 20000 : 120000));
  const auto generations =
      static_cast<std::size_t>(cli.get_int("generations", quick ? 300 : 3000));
  const auto executions =
      static_cast<std::size_t>(cli.get_int("executions", quick ? 1 : 3));
  // Quick sweeps are ~1 ms, so extra reps are free and the min needs them
  // to be repeatable on a noisy CI box.
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", quick ? 7 : 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const bool train_path = !cli.get_bool("no-train-path");
  const std::string json_path = cli.get_string("json", "");
  const std::string trace_out = cli.get_string("trace-out", "");
  if (!trace_out.empty() && !ef::obs::Timeline::enabled()) {
    ef::obs::Timeline::set_sample_rate(1.0);
  }
  // Root trace covering training (generation spans land under it via
  // ef::core::train) and the timed backend sweeps below.
  const ef::obs::TraceScope bench_trace("bench.match_kernel");

  // The paper's Mackey-Glass embedding: D = 4 lags, horizon τ = 6.
  const auto series = ef::series::generate_mackey_glass(series_len);
  const WindowDataset data(series, 4, 6);
  const WindowDataset train_ds(series.slice(0, std::min<std::size_t>(3000, series_len)),
                               4, 6);

  ef::core::RuleSystemConfig cfg;
  cfg.evolution.population_size = 50;
  cfg.evolution.generations = generations;
  cfg.evolution.emax = 0.06;  // raw MG amplitude ≈ [0.2, 1.4]
  cfg.evolution.seed = seed;
  cfg.max_executions = executions;
  cfg.coverage_target_percent = 100.0;  // union every execution
  const auto trained = ef::core::train(train_ds, {.config = cfg});
  const std::vector<Rule>& rules = trained.system.rules();
  if (rules.empty()) {
    std::fprintf(stderr, "bench_match_kernel: training produced no rules\n");
    return 2;
  }

  std::printf("bench_match_kernel: %zu windows x %zu rules, %zu reps%s\n",
              data.count(), rules.size(), reps, quick ? " (quick)" : "");

  // Single-worker pool: m > the parallel grain, so a multi-worker pool would
  // measure chunking, not the kernels.
  ef::util::ThreadPool one(1);

  // Correctness gate first: every backend (per-rule and batched entry
  // points) vs the scalar serial reference.
  const MatchEngine reference(data, &one);
  bool identical = true;
  constexpr MatchBackend kBackends[] = {MatchBackend::kScalar, MatchBackend::kSoa,
                                        MatchBackend::kSoaPrefilter, MatchBackend::kAvx2,
                                        MatchBackend::kRuleMajor};
  for (const MatchBackend backend : kBackends) {
    const MatchEngine engine(data, &one, backend);
    const auto batched = engine.match_all(rules);
    for (std::size_t r = 0; r < rules.size(); ++r) {
      const auto expected = reference.match_indices_serial(rules[r]);
      if (batched[r] != expected || engine.match_indices(rules[r]) != expected) {
        std::fprintf(stderr, "MATCH SET MISMATCH: backend=%s rule=%zu\n",
                     ef::core::to_string(backend), r);
        identical = false;
        break;
      }
    }
  }

  std::vector<BackendResult> results;
  for (const MatchBackend backend : kBackends) {
    ef::obs::SpanScope sweep_span("bench.sweep");
    sweep_span.set_arg("backend", static_cast<double>(backend));
    const MatchEngine engine(data, &one, backend);
    BackendResult r;
    r.backend = backend;
    r.matched = sweep(engine, rules);  // warm
    // Per-rep minimum: the machine is shared, so total time over reps mixes
    // in scheduler noise; the fastest sweep is the most repeatable estimate
    // of what the kernel actually costs.
    r.seconds = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const double t0 = now_seconds();
      const std::size_t matched = sweep(engine, rules);
      const double dt = now_seconds() - t0;
      if (matched != r.matched) {
        std::fprintf(stderr, "UNSTABLE SWEEP: backend=%s\n", ef::core::to_string(backend));
        identical = false;
      }
      if (rep == 0 || dt < r.seconds) r.seconds = dt;
    }
    const double scanned =
        static_cast<double>(rules.size()) * static_cast<double>(data.count());
    r.windows_per_sec = r.seconds > 0.0 ? scanned / r.seconds : 0.0;
    results.push_back(r);
    std::printf("  %-14s %8.3f s/sweep   %12.3e windows/s   (%zu matches/sweep)\n",
                ef::core::to_string(backend), r.seconds, r.windows_per_sec, r.matched);
  }

  const double scalar_wps = results[0].windows_per_sec;
  std::printf("  speedup: soa %.2fx, soa_prefilter %.2fx, avx2 %.2fx, rule_major %.2fx, "
              "match sets %s\n",
              results[1].windows_per_sec / scalar_wps,
              results[2].windows_per_sec / scalar_wps,
              results[3].windows_per_sec / scalar_wps,
              results[4].windows_per_sec / scalar_wps,
              identical ? "identical" : "MISMATCH");

  // End-to-end train path: same seed, same offspring schedule, the
  // pre-batching per-rule prefilter fitness loop (batched_fitness = false)
  // vs the rule-major batched fitness path. The generational engine is the
  // shape where batching structurally applies — every generation evaluates a
  // whole offspring cohort, which the batched path turns into one plane
  // build + one window pass (the steady-state engine only batches its
  // initial populations). The two runs must serialise to byte-identical
  // rule systems (the fitness wiring is bit-exact, not just the kernels),
  // and the ratio is reported as train_speedup. Larger slice than the
  // rule-source training above so evaluation (not operator bookkeeping)
  // dominates, as it does at production series lengths.
  double train_per_rule_s = 0.0;
  double train_rule_major_s = 0.0;
  double train_speedup = 0.0;
  bool train_identical = true;
  std::size_t train_windows = 0;
  if (train_path) {
    const std::size_t train_len = std::min<std::size_t>(quick ? 8000 : 30000, series_len);
    const WindowDataset path_ds(series.slice(0, train_len), 4, 6);
    train_windows = path_ds.count();
    ef::core::GenerationalConfig gen_cfg;
    gen_cfg.base = cfg.evolution;
    const std::size_t eval_budget = quick ? 1500 : 6000;

    std::string bytes_per_rule;
    std::string bytes_rule_major;
    for (const bool batched : {false, true}) {
      ef::core::GenerationalConfig run_cfg = gen_cfg;
      run_cfg.base.batched_fitness = batched;
      run_cfg.base.match_backend =
          batched ? MatchBackend::kRuleMajor : MatchBackend::kSoaPrefilter;
      const double t0 = now_seconds();
      ef::core::GenerationalEngine engine(path_ds, run_cfg, &one);
      engine.run_evaluations(eval_budget);
      const double dt = now_seconds() - t0;
      ef::core::RuleSystem system;
      system.add_rules(std::vector<Rule>(engine.population()), /*discard_unfit=*/true,
                       run_cfg.base.f_min);
      std::ostringstream buffer;
      system.save(buffer);
      (batched ? bytes_rule_major : bytes_per_rule) = buffer.str();
      (batched ? train_rule_major_s : train_per_rule_s) = dt;
    }
    train_identical = !bytes_per_rule.empty() && bytes_per_rule == bytes_rule_major;
    train_speedup =
        train_rule_major_s > 0.0 ? train_per_rule_s / train_rule_major_s : 0.0;
    std::printf("  train path (%zu windows, %zu evals): per-rule %.3f s, "
                "rule-major %.3f s, speedup %.2fx, rule systems %s\n",
                train_windows, eval_budget, train_per_rule_s, train_rule_major_s,
                train_speedup, train_identical ? "identical" : "MISMATCH");
    if (!train_identical) identical = false;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_match_kernel: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n");
    // Provenance stamp: which sources/toolchain produced these numbers.
    // check_match_bench.py ignores it; humans diffing baselines don't.
    std::fprintf(f, "  \"build\": %s,\n", ef::obs::build_info_json().c_str());
    std::fprintf(f,
                 "  \"config\": {\"series\": %zu, \"windows\": %zu, \"rules\": %zu, "
                 "\"reps\": %zu, \"quick\": %s, \"window\": 4, \"horizon\": 6},\n",
                 series_len, data.count(), rules.size(), reps,
                 quick ? "true" : "false");
    std::fprintf(f, "  \"backends\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::fprintf(f,
                   "    \"%s\": {\"seconds\": %.6f, \"windows_per_sec\": %.1f, "
                   "\"matches_per_sweep\": %zu}%s\n",
                   ef::core::to_string(results[i].backend), results[i].seconds,
                   results[i].windows_per_sec, results[i].matched,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"speedup\": {\"soa\": %.3f, \"soa_prefilter\": %.3f, "
                 "\"avx2\": %.3f, \"rule_major\": %.3f},\n",
                 results[1].windows_per_sec / scalar_wps,
                 results[2].windows_per_sec / scalar_wps,
                 results[3].windows_per_sec / scalar_wps,
                 results[4].windows_per_sec / scalar_wps);
    if (train_path) {
      std::fprintf(f,
                   "  \"train\": {\"windows\": %zu, \"seconds_per_rule\": %.3f, "
                   "\"seconds_rule_major\": %.3f, \"train_speedup\": %.3f, "
                   "\"rule_systems_identical\": %s},\n",
                   train_windows, train_per_rule_s, train_rule_major_s, train_speedup,
                   train_identical ? "true" : "false");
    }
    std::fprintf(f, "  \"match_sets_identical\": %s\n", identical ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  if (!trace_out.empty()) {
    if (ef::obs::write_chrome_trace_file(trace_out)) {
      std::printf("  trace: wrote %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "bench_match_kernel: cannot write %s\n", trace_out.c_str());
      return 2;
    }
  }

  return identical ? 0 : 1;
}
