// libFuzzer target: one JSON-lines protocol request through parse_request.
#include "harness/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  return ef::fuzz::protocol_line(data, size);
}
