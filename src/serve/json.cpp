#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace ef::serve::json {
namespace {

struct ParseError {
  std::string message;
};

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Value parse() {
    Value v = value(/*depth=*/0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError{what + " at byte " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value(std::size_t depth) {
    if (depth > options_.max_depth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return Value{string()};
      case 't': return keyword("true", Value{true});
      case 'f': return keyword("false", Value{false});
      case 'n': return keyword("null", Value{nullptr});
      default: return Value{number()};
    }
  }

  Value keyword(std::string_view word, Value result) {
    if (text_.substr(pos_, word.size()) != word) fail("bad literal");
    pos_ += word.size();
    return result;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': unicode_escape(out); break;
        default: fail("bad escape");
      }
    }
  }

  /// Four hex digits already past the "\u". Fails on bad hex and on lone
  /// surrogates; a valid surrogate pair decodes to one code point.
  std::uint32_t hex4() {
    std::uint32_t unit = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      unit <<= 4;
      if (c >= '0' && c <= '9') {
        unit |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        unit |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        unit |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return unit;
  }

  void unicode_escape(std::string& out) {
    std::uint32_t code = hex4();
    if (code >= 0xDC00 && code <= 0xDFFF) fail("lone low surrogate");
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("high surrogate not followed by \\u escape");
      }
      pos_ += 2;
      const std::uint32_t low = hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  double number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    if (!std::isfinite(v)) fail("non-finite number");
    return v;
  }

  Value array(std::size_t depth) {
    expect('[');
    Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(items)};
    }
    for (;;) {
      items.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Value{std::move(items)};
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value object(std::size_t depth) {
    expect('{');
    Object fields;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(fields)};
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      // Reject duplicates outright: last-one-wins would silently discard a
      // request field, and the caller has no way to notice.
      const auto [it, inserted] = fields.emplace(std::move(key), Value{nullptr});
      if (!inserted) fail("duplicate key \"" + it->first + "\"");
      it->second = value(depth + 1);
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Value{std::move(fields)};
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  ParseOptions options_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string& error,
                           const ParseOptions& options) {
  try {
    return Parser(text, options).parse();
  } catch (const ParseError& e) {
    error = e.message;
    return std::nullopt;
  }
}

namespace {

void dump_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(std::string& out, const Value& value) {
  if (value.is_null()) {
    out += "null";
  } else if (const bool* b = value.as_bool()) {
    out += *b ? "true" : "false";
  } else if (const double* n = value.as_number()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", *n);
    out += buf;
  } else if (const std::string* s = value.as_string()) {
    dump_string(out, *s);
  } else if (const Array* a = value.as_array()) {
    out.push_back('[');
    for (std::size_t i = 0; i < a->size(); ++i) {
      if (i) out.push_back(',');
      dump_value(out, (*a)[i]);
    }
    out.push_back(']');
  } else if (const Object* o = value.as_object()) {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, item] : *o) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(out, key);
      out.push_back(':');
      dump_value(out, item);
    }
    out.push_back('}');
  }
}

}  // namespace

std::string dump(const Value& value) {
  std::string out;
  dump_value(out, value);
  return out;
}

}  // namespace ef::serve::json
