// Tests for series/csv.hpp: stream parsing, header skipping, error cases,
// table writing, file round-trip.
#include "series/csv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace {

using ef::series::read_series_csv;
using ef::series::Table;
using ef::series::TimeSeries;

TEST(CsvRead, PlainColumn) {
  std::istringstream in("1.5\n2.5\n3.5\n");
  const TimeSeries s = read_series_csv(in);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0], 1.5);
  EXPECT_DOUBLE_EQ(s[2], 3.5);
}

TEST(CsvRead, HeaderRowSkipped) {
  std::istringstream in("value\n1.0\n2.0\n");
  const TimeSeries s = read_series_csv(in);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
}

TEST(CsvRead, SelectsColumn) {
  std::istringstream in("t,level\n0,10.5\n1,11.5\n");
  const TimeSeries s = read_series_csv(in, 1);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[1], 11.5);
}

TEST(CsvRead, CustomDelimiter) {
  std::istringstream in("1.0;2.0\n3.0;4.0\n");
  const TimeSeries s = read_series_csv(in, 1, ';');
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
}

TEST(CsvRead, BlankLinesIgnored) {
  std::istringstream in("1.0\n\n2.0\n\n");
  EXPECT_EQ(read_series_csv(in).size(), 2u);
}

TEST(CsvRead, WindowsLineEndings) {
  std::istringstream in("1.0\r\n2.0\r\n");
  const TimeSeries s = read_series_csv(in);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
}

TEST(CsvRead, NonNumericMidFileThrows) {
  std::istringstream in("1.0\noops\n");
  EXPECT_THROW((void)read_series_csv(in), std::runtime_error);
}

TEST(CsvRead, MissingColumnThrows) {
  std::istringstream in("1.0\n");
  EXPECT_THROW((void)read_series_csv(in, 3), std::runtime_error);
}

TEST(CsvRead, MissingFileThrows) {
  EXPECT_THROW((void)read_series_csv("/nonexistent/path.csv"), std::runtime_error);
}

TEST(CsvFile, SeriesRoundTrip) {
  const std::string path = testing::TempDir() + "/evoforecast_csv_roundtrip.csv";
  const TimeSeries original({-1.25, 0.0, 99.75}, "rt");
  ef::series::write_series_csv(path, original);
  const TimeSeries back = read_series_csv(path);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < back.size(); ++i) EXPECT_DOUBLE_EQ(back[i], original[i]);
  std::remove(path.c_str());
}

TEST(Table, AddColumnLengthChecked) {
  Table t;
  t.add_column("a", {1.0, 2.0});
  EXPECT_THROW(t.add_column("b", {1.0}), std::invalid_argument);
  t.add_column("b", {3.0, 4.0});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, WritesCsvWithNanAsEmpty) {
  Table t;
  t.add_column("x", {1.0, std::nan("")});
  t.add_column("y", {3.0, 4.0});
  std::ostringstream out;
  ef::series::write_table_csv(out, t);
  EXPECT_EQ(out.str(), "x,y\n1,3\n,4\n");
}

TEST(Table, EmptyTableJustHeader) {
  Table t;
  std::ostringstream out;
  ef::series::write_table_csv(out, t);
  EXPECT_EQ(out.str(), "\n");
}

// Fuzz: random byte soup must either parse (if it happens to be numeric) or
// throw — never crash and never produce non-finite values.
TEST(CsvRead, RandomJunkNeverCrashes) {
  const char kAlphabet[] = "0123456789.,-+eE \tabcXYZ\r\n";
  std::uint64_t state = 12345;
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const std::size_t len = 1 + (state >> 5) % 120;
    for (std::size_t i = 0; i < len; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      text += kAlphabet[(state >> 33) % (sizeof(kAlphabet) - 1)];
    }
    std::istringstream in(text);
    try {
      const TimeSeries s = read_series_csv(in);
      for (std::size_t i = 0; i < s.size(); ++i) {
        ASSERT_TRUE(std::isfinite(s[i]));
      }
    } catch (const std::exception&) {
      // fine — malformed input must throw, not crash
    }
  }
}

}  // namespace
