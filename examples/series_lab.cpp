// series_lab — a tour of the series substrate and the automation layers
// built on top of the paper's system:
//
//   1. every built-in generator (Mackey-Glass, Venice, sunspots, Lorenz)
//      with its descriptive statistics and ACF-detected dominant period,
//   2. automatic EMAX calibration (core/tuning) against a coverage target,
//   3. a walk-forward backtest (core/backtest) instead of one split,
//   4. forecasts with uncertainty bounds (RuleSystem::predict_with_bound).
//
// Build & run:  ./build/examples/series_lab
#include <cmath>
#include <cstdio>

#include "core/backtest.hpp"
#include "core/rule_system.hpp"
#include "core/tuning.hpp"
#include "series/analysis.hpp"
#include "series/lorenz.hpp"
#include "series/mackey_glass.hpp"
#include "series/sunspot.hpp"
#include "series/transforms.hpp"
#include "series/venice.hpp"

namespace {

void describe(const ef::series::TimeSeries& s, std::size_t min_lag, std::size_t max_lag) {
  std::printf("%-16s n=%-6zu range=[%8.2f, %8.2f] mean=%8.2f sd=%7.2f", s.name().c_str(),
              s.size(), s.min(), s.max(), s.mean(), std::sqrt(s.variance()));
  if (const auto period = ef::series::detect_period(s, min_lag, max_lag)) {
    std::printf("  period~%zu (acf %.2f)\n", period->period, period->acf_value);
  } else {
    std::printf("  period: none detected\n");
  }
}

}  // namespace

int main() {
  std::printf("== 1. generators ==\n");
  const auto mg = ef::series::generate_mackey_glass(2000);
  const auto venice = ef::series::generate_venice(8000);
  const auto sunspots = ef::series::generate_sunspots(2739);
  const auto lorenz = ef::series::generate_lorenz(2000);
  describe(mg, 10, 200);
  describe(venice, 3, 40);
  describe(sunspots, 60, 240);
  describe(lorenz, 3, 100);

  std::printf("\n== 2. transforms ==\n");
  const auto diffed = ef::series::difference(venice, 24);
  std::printf("venice seasonal diff (lag 24): sd %.2f -> %.2f cm\n",
              std::sqrt(venice.variance()), std::sqrt(diffed.series.variance()));
  const auto logged = ef::series::log1p_transform(sunspots);
  std::printf("sunspots log1p: range [%.1f, %.1f] -> [%.2f, %.2f]\n", sunspots.min(),
              sunspots.max(), logged.min(), logged.max());

  std::printf("\n== 3. automatic EMAX calibration (Mackey-Glass, tau=6) ==\n");
  const ef::core::WindowDataset mg_train(mg.slice(0, 1500), 4, 6);
  ef::core::EvolutionConfig base;
  base.population_size = 50;
  base.generations = 2000;  // real runs would use more; tuner pilots are shorter
  base.seed = 5;
  ef::core::EmaxTuningOptions tuning;
  tuning.coverage_target_percent = 92.0;
  const auto tuned = ef::core::tune_emax(mg_train, base, tuning);
  std::printf("tuned EMAX = %.4f after %zu probes (pilot coverage %.1f%%)\n", tuned.emax,
              tuned.probes.size(), tuned.achieved_coverage_percent);

  std::printf("\n== 4. walk-forward backtest with the tuned budget ==\n");
  ef::core::RuleSystemConfig cfg;
  cfg.evolution = base;
  cfg.evolution.emax = tuned.emax;
  cfg.coverage_target_percent = 92.0;
  cfg.max_executions = 3;
  ef::core::BacktestOptions backtest;
  backtest.window = 4;
  backtest.horizon = 6;
  backtest.initial_train = 1000;
  backtest.fold_size = 200;
  const auto result = ef::core::backtest_rule_system(mg, cfg, backtest);
  for (const auto& fold : result.folds) {
    std::printf("  fold@%5zu: coverage %5.1f%%  rmse %.4f  (%zu rules)\n", fold.origin,
                fold.report.coverage_percent, fold.report.rmse, fold.rules);
  }
  std::printf("pooled: coverage %.1f%%, rmse %.4f, mae %.4f over %zu folds\n",
              result.mean_coverage_percent, result.pooled_rmse, result.pooled_mae,
              result.folds.size());

  std::printf("\n== 5. forecasts with uncertainty bounds ==\n");
  const ef::core::WindowDataset eval(mg.slice(1500, 2000), 4, 6);
  const auto trained = ef::core::train(mg_train, {.config = cfg});
  std::size_t covered = 0;
  std::size_t inside = 0;
  double bound_sum = 0.0;
  for (std::size_t i = 0; i < eval.count(); ++i) {
    const auto out = trained.system.predict_with_bound(eval.pattern(i));
    if (!out) continue;
    ++covered;
    bound_sum += out->bound;
    if (std::abs(eval.target(i) - out->value) <= out->bound) ++inside;
  }
  if (covered > 0) {
    std::printf("held-out: %zu covered windows, mean bound ±%.4f, actual inside the "
                "bound %.1f%% of the time\n",
                covered, bound_sum / static_cast<double>(covered),
                100.0 * static_cast<double>(inside) / static_cast<double>(covered));
  }
  return 0;
}
