// introspection.hpp — explanation utilities for rule-system forecasts.
//
// A Michigan population is intrinsically interpretable; these helpers turn
// that into API:
//   * explain(window): which rules voted, with what output, fitness, error
//     and specificity — the full provenance of one forecast;
//   * gene_importance(): which input lags the evolved rule set actually
//     constrains, as a fitness-weighted selectivity profile — the data-driven
//     answer to "which of my D inputs matter?" (complements Ablation E's
//     embedding sweep).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/aggregation.hpp"
#include "core/rule_system.hpp"

namespace ef::core {

/// One voter's contribution to a forecast.
struct RuleExplanation {
  std::size_t rule_index = 0;  ///< index into system.rules()
  double output = 0.0;         ///< this rule's hyperplane output at the window
  double fitness = 0.0;
  double error = 0.0;        ///< rule e_R
  std::size_t matches = 0;   ///< N_R on its training data
  std::size_t specificity = 0;  ///< non-wildcard genes
};

/// Full provenance of one forecast (empty voters = abstention).
struct ForecastExplanation {
  std::optional<double> forecast;
  std::vector<RuleExplanation> voters;
};

[[nodiscard]] ForecastExplanation explain(const RuleSystem& system,
                                          std::span<const double> window,
                                          Aggregation how = Aggregation::kMean);

/// Per-lag importance profile in [0, 1]: the fitness-weighted mean
/// *selectivity* of each gene position across the rule set, where a
/// wildcard scores 0 and a bounded interval scores 1 − width/range (clamped
/// to [0,1]; `value_lo/hi` define the range). Rules with non-positive
/// fitness get a small floor weight so a population of only-f_min rules
/// still yields a profile. Throws std::invalid_argument when hi <= lo, and
/// returns an empty vector for an empty system.
[[nodiscard]] std::vector<double> gene_importance(const RuleSystem& system, double value_lo,
                                                  double value_hi);

}  // namespace ef::core
