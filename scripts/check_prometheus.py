#!/usr/bin/env python3
"""Validate Prometheus text exposition format 0.0.4 (used by CI).

Reads stdin when FILE is omitted.

Structural checks on a scrape of efserve's GET /metrics:
  * every sample line parses as  name{labels} value  with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a parseable value
  * every sample's base family has a # TYPE line, and it appears before
    the samples it describes
  * counters end in _total
  * histogram bucket series are cumulative (non-decreasing in le order),
    end with an le="+Inf" bucket, and that bucket equals <family>_count
  * le label values are parseable floats or +Inf

Label checks (the serve layer exports labelled ef_quality_* series):
  * label blocks parse strictly as  name="value"[,name="value"]*  with legal
    label names ([a-zA-Z_][a-zA-Z0-9_]*) and no duplicate names per sample
  * label values use only the legal escapes (\\, \", \n)
  * label names appear in sorted order, and every sample of a metric carries
    the same label-name set (byte-stable series identity across scrapes)
  * no duplicate series (same name + same label set twice in one scrape)
  * no family exports more than MAX_SERIES_PER_FAMILY series — providers
    must cap their own cardinality (top-K + aggregate, never per-key)

With --windowed, additionally require windowed coverage: the collector
window must be live (evoforecast_window_seconds > 0) and every histogram
family must expose windowed quantile gauges (<family>_window{q="..."}) and
a windowed rate (<family>_window_rate) — catching histograms added to the
registry without showing up in the windowed section.

Usage: check_prometheus.py [--windowed] [FILE]

Importable: validate(text) and validate_windowed(text) return lists of
problem strings (empty = ok); validate_windowed reports nothing when the
window is not live yet (callers poll for evoforecast_window_seconds > 0
first). The CLI prints each problem and exits 1 on any, 2 on usage/IO
errors — always a readable message, never a traceback.
"""
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: \d+)?$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

# Bounded-cardinality contract: no family may export more series than this
# in one scrape (histogram buckets included). Providers export top-K worst
# plus an aggregate, never one series per unbounded key.
MAX_SERIES_PER_FAMILY = 64


def _parse_labels(text):
    """Strictly parse a label-block body; (name, value) pairs or None."""
    pairs = []
    pos = 0
    while pos < len(text):
        match = LABEL_RE.match(text, pos)
        if match is None:
            return None
        pairs.append((match.group(1), match.group(2)))
        pos = match.end()
        if pos < len(text):
            if text[pos] != ",":
                return None
            pos += 1
            if pos == len(text):
                return None  # trailing comma
    return pairs


def _bad_escape(value):
    """True when a label value uses an escape outside \\\\, \\" and \\n."""
    i = 0
    while i < len(value):
        if value[i] == "\\":
            if i + 1 >= len(value) or value[i + 1] not in ('\\', '"', 'n'):
                return True
            i += 2
        else:
            i += 1
    return False


def _parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)  # raises ValueError on garbage


def _family_of(name):
    """Base metric family: strip histogram sample suffixes."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate(text):
    problems = []
    types = {}          # family -> declared type
    type_line_no = {}   # family -> line number of its # TYPE
    buckets = {}        # family -> list of (le, value, line_no)
    counts = {}         # family -> _count value
    label_sets = {}     # sample name -> (frozenset of label names, line_no)
    series_seen = set()  # (name, label pairs) — duplicate-series detection
    series_per_family = {}
    samples = 0

    for line_no, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            problems.append(f"line {line_no}: blank line in exposition")
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {line_no}: malformed TYPE line: {line!r}")
                continue
            _, _, family, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {line_no}: unknown type {kind!r} for {family}")
            if family in types:
                problems.append(f"line {line_no}: duplicate TYPE for {family}")
            types[family] = kind
            type_line_no[family] = line_no
            continue
        if line.startswith("#"):
            continue  # HELP / comments: fine

        match = SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {line_no}: unparseable sample: {line!r}")
            continue
        samples += 1
        name = match.group("name")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            problems.append(
                f"line {line_no}: bad value {match.group('value')!r} for {name}")
            continue
        labels_text = match.group("labels")
        label_pairs = []
        if labels_text is not None:
            parsed = _parse_labels(labels_text)
            if parsed is None:
                problems.append(
                    f"line {line_no}: malformed label block on {name}: "
                    f"{{{labels_text}}}")
                continue
            label_pairs = parsed
            names = [label for label, _ in label_pairs]
            if len(set(names)) != len(names):
                problems.append(
                    f"line {line_no}: duplicate label name on {name}")
            if names != sorted(names):
                problems.append(
                    f"line {line_no}: label names not sorted on {name}: {names}")
            for label, label_value in label_pairs:
                if _bad_escape(label_value):
                    problems.append(
                        f"line {line_no}: invalid escape in label "
                        f"{label}={label_value!r} on {name}")
        labels = dict(label_pairs)

        # Series identity: the same metric must carry the same label-name
        # set on every sample, and no (name, labels) pair may repeat.
        label_names = frozenset(label for label, _ in label_pairs)
        prior = label_sets.get(name)
        if prior is None:
            label_sets[name] = (label_names, line_no)
        elif prior[0] != label_names:
            problems.append(
                f"line {line_no}: {name} label set {sorted(label_names)} "
                f"differs from line {prior[1]} ({sorted(prior[0])})")
        series = (name, tuple(label_pairs))
        if series in series_seen:
            problems.append(
                f"line {line_no}: duplicate series {name}{{{labels_text or ''}}}")
        series_seen.add(series)

        family = _family_of(name)
        series_per_family[family] = series_per_family.get(family, 0) + 1
        declared = types.get(family) or types.get(name)
        if declared is None:
            problems.append(f"line {line_no}: sample {name} has no # TYPE line")
            continue
        described = family if family in types else name
        if type_line_no[described] > line_no:
            problems.append(
                f"line {line_no}: sample {name} precedes its # TYPE line")

        if declared == "counter" and not name.endswith("_total"):
            problems.append(
                f"line {line_no}: counter sample {name} does not end in _total")

        if declared == "histogram" and name.endswith("_bucket"):
            le = labels.get("le")
            if le is None:
                problems.append(f"line {line_no}: bucket without le label: {name}")
                continue
            try:
                bound = _parse_value(le)
            except ValueError:
                problems.append(f"line {line_no}: unparseable le={le!r} on {name}")
                continue
            buckets.setdefault(family, []).append((bound, value, line_no))
        if declared == "histogram" and name.endswith("_count"):
            counts[family] = value

    for family, series in sorted(buckets.items()):
        bounds = [bound for bound, _, _ in series]
        if bounds != sorted(bounds):
            problems.append(f"{family}: le buckets not in ascending order")
        last = None
        for bound, value, line_no in series:
            if last is not None and value < last:
                problems.append(
                    f"line {line_no}: {family} bucket le={bound} count {value} "
                    f"< previous bucket {last} (not cumulative)")
            last = value
        if not series or series[-1][0] != float("inf"):
            problems.append(f"{family}: bucket series does not end at le=\"+Inf\"")
        elif family in counts and series[-1][1] != counts[family]:
            problems.append(
                f"{family}: +Inf bucket {series[-1][1]} != _count {counts[family]}")
        if family in types and family not in counts:
            problems.append(f"{family}: histogram has buckets but no _count sample")

    for family, count in sorted(series_per_family.items()):
        if count > MAX_SERIES_PER_FAMILY:
            problems.append(
                f"{family}: {count} series exceeds the cardinality cap "
                f"({MAX_SERIES_PER_FAMILY}) — providers must export top-K "
                f"plus an aggregate, not one series per key")

    if samples == 0:
        problems.append("no samples found — empty or non-exposition input")
    return problems


def validate_windowed(text):
    """Cross-check that every histogram also appears in windowed form.

    The WindowedCollector derives <family>_window{q=...} gauges and a
    <family>_window_rate from every histogram in its newest frame, so a
    histogram missing from the windowed section means it was registered but
    never reached a collector frame — exactly the regression this catches.
    Returns [] when the window is not live yet (no frames: nothing windowed
    is expected); callers wanting a hard requirement poll for
    evoforecast_window_seconds > 0 before calling.
    """
    problems = []
    window_seconds = 0.0
    histogram_families = set()
    window_quantiles = set()
    window_rates = set()
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) == 4 and parts[3] == "histogram":
                histogram_families.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            continue  # validate() reports malformed lines
        name = match.group("name")
        if name == "evoforecast_window_seconds":
            try:
                window_seconds = _parse_value(match.group("value"))
            except ValueError:
                pass
        elif name.endswith("_window"):
            window_quantiles.add(name[: -len("_window")])
        elif name.endswith("_window_rate"):
            window_rates.add(name[: -len("_window_rate")])
    if not window_seconds > 0.0:
        return problems
    for family in sorted(histogram_families):
        if family not in window_quantiles:
            problems.append(
                f"{family}: histogram has no windowed quantiles ({family}_window)")
        if family not in window_rates:
            problems.append(
                f"{family}: histogram has no windowed rate ({family}_window_rate)")
    return problems


def main():
    argv = sys.argv[1:]
    windowed = "--windowed" in argv
    argv = [a for a in argv if a != "--windowed"]
    if len(argv) > 1:
        print(__doc__)
        return 2
    try:
        if len(argv) == 1:
            with open(argv[0]) as f:
                text = f.read()
        else:
            text = sys.stdin.read()
    except OSError as err:
        print(f"check_prometheus: cannot read input: {err}")
        return 2

    problems = validate(text)
    if windowed:
        # The flag makes windowed coverage a hard requirement: a scrape with
        # no live window fails instead of vacuously passing.
        live = re.search(
            r"^evoforecast_window_seconds ([0-9.eE+-]+)", text, re.MULTILINE)
        if live is None or not float(live.group(1)) > 0.0:
            problems.append(
                "--windowed: collector window not live "
                "(evoforecast_window_seconds missing or 0)")
        else:
            problems += validate_windowed(text)
    if problems:
        for problem in problems:
            print(f"  [FAIL] {problem}")
        print(f"check_prometheus: {len(problems)} problem(s)")
        return 1
    families = len(re.findall(r"^# TYPE ", text, re.MULTILINE))
    print(f"check_prometheus: ok ({families} metric families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
