// Tests for series/sunspot.hpp: determinism, non-negativity, quasi-periodic
// cycle structure, rise/decay asymmetry, paper arrangement.
#include "series/sunspot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace {

using ef::series::generate_sunspots;
using ef::series::SunspotParams;

TEST(Sunspot, Deterministic) {
  const auto a = generate_sunspots(1000);
  const auto b = generate_sunspots(1000);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Sunspot, ZeroMonthsThrows) {
  EXPECT_THROW((void)generate_sunspots(0), std::invalid_argument);
}

TEST(Sunspot, NonNegative) {
  const auto s = generate_sunspots(3000);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Sunspot, AmplitudeResemblesHistory) {
  // Historical monthly means peak around 150-250 and bottom near 0.
  const auto s = generate_sunspots(2739);
  EXPECT_GT(s.max(), 80.0);
  EXPECT_LT(s.max(), 400.0);
  EXPECT_LT(s.min(), 15.0);
}

// Count the prominent maxima; over 2739 months (~228 years) there should be
// roughly 228/11 ≈ 21 cycles. Use a coarse smoothed-peak count.
TEST(Sunspot, CycleCountNearElevenYears) {
  const auto s = generate_sunspots(2739);
  // 25-month centred moving average to remove noise.
  std::vector<double> smooth(s.size(), 0.0);
  const int half = 12;
  for (std::size_t i = 0; i < s.size(); ++i) {
    double acc = 0.0;
    int n = 0;
    for (int j = -half; j <= half; ++j) {
      const auto k = static_cast<long long>(i) + j;
      if (k >= 0 && k < static_cast<long long>(s.size())) {
        acc += s[static_cast<std::size_t>(k)];
        ++n;
      }
    }
    smooth[i] = acc / n;
  }
  // A peak = global max within ±48 months and above half the series max.
  const double threshold = 0.3 * *std::max_element(smooth.begin(), smooth.end());
  int peaks = 0;
  for (std::size_t i = 48; i + 48 < smooth.size(); ++i) {
    bool is_peak = smooth[i] > threshold;
    for (std::size_t j = i - 48; is_peak && j <= i + 48; ++j) {
      if (smooth[j] > smooth[i]) is_peak = false;
    }
    if (is_peak) ++peaks;
  }
  EXPECT_GE(peaks, 14);
  EXPECT_LE(peaks, 28);
}

// Waldmeier-style asymmetry: on average the rise to a peak is faster than
// the decay. Measured on the smoothed series as mean (peak − preceding
// trough) distance vs (following trough − peak).
TEST(Sunspot, RiseFasterThanDecay) {
  SunspotParams p;
  p.noise_floor = 0.0;
  p.noise_slope = 0.0;  // deterministic shape: asymmetry is structural
  const auto s = generate_sunspots(2739, p);

  // Find alternating trough/peak indices on the clean signal.
  std::vector<std::size_t> peaks;
  for (std::size_t i = 24; i + 24 < s.size(); ++i) {
    bool is_peak = s[i] > 40.0;
    for (std::size_t j = i - 24; is_peak && j <= i + 24; ++j) {
      if (s[j] > s[i]) is_peak = false;
    }
    if (is_peak) peaks.push_back(i);
  }
  ASSERT_GE(peaks.size(), 5u);

  double rise_sum = 0.0;
  double decay_sum = 0.0;
  int counted = 0;
  for (std::size_t k = 1; k + 1 < peaks.size(); ++k) {
    // Trough = min between consecutive peaks.
    const auto trough_before = static_cast<std::size_t>(
        std::min_element(s.values().begin() + static_cast<long>(peaks[k - 1]),
                         s.values().begin() + static_cast<long>(peaks[k])) -
        s.values().begin());
    const auto trough_after = static_cast<std::size_t>(
        std::min_element(s.values().begin() + static_cast<long>(peaks[k]),
                         s.values().begin() + static_cast<long>(peaks[k + 1])) -
        s.values().begin());
    rise_sum += static_cast<double>(peaks[k] - trough_before);
    decay_sum += static_cast<double>(trough_after - peaks[k]);
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_LT(rise_sum / counted, decay_sum / counted);
}

TEST(SunspotExperiment, PaperArrangement) {
  const auto exp = ef::series::make_paper_sunspots();
  EXPECT_EQ(exp.train.size(), ef::series::kSunspotTrainMonths);
  EXPECT_EQ(exp.validation.size(), ef::series::kSunspotValidationMonths);
  EXPECT_NEAR(exp.train.min(), 0.0, 1e-12);
  EXPECT_NEAR(exp.train.max(), 1.0, 1e-12);
}

TEST(SunspotExperiment, GapActuallySkipped) {
  const auto exp = ef::series::make_paper_sunspots();
  const auto full = generate_sunspots(ef::series::kSunspotTrainMonths +
                                      ef::series::kSunspotGapMonths +
                                      ef::series::kSunspotValidationMonths);
  const double raw_val0 =
      full[ef::series::kSunspotTrainMonths + ef::series::kSunspotGapMonths];
  EXPECT_NEAR(exp.normalizer.inverse(exp.validation[0]), raw_val0, 1e-9);
}

}  // namespace
