// Tests for train() scheduling (sequential vs islands vs auto) and
// RuleSystem::predict_with_bound: exact equivalence between schedules,
// telemetry rules, the deprecated entry points, and empirical calibration of
// the uncertainty bound.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using ef::core::RuleSystemConfig;
using ef::core::TrainOptions;
using ef::core::TrainParallelism;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

TimeSeries noisy_sine(std::size_t n) {
  ef::util::Rng rng(55);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(static_cast<double>(i) * 0.2) + rng.normal(0.0, 0.03);
  }
  return TimeSeries(std::move(v));
}

RuleSystemConfig config_with(std::size_t executions, double coverage_target) {
  RuleSystemConfig cfg;
  cfg.evolution.population_size = 15;
  cfg.evolution.generations = 250;
  cfg.evolution.emax = 0.3;
  cfg.evolution.seed = 9;
  cfg.max_executions = executions;
  cfg.coverage_target_percent = coverage_target;
  return cfg;
}

void expect_same_result(const ef::core::TrainResult& a, const ef::core::TrainResult& b) {
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_DOUBLE_EQ(a.train_coverage_percent, b.train_coverage_percent);
  ASSERT_EQ(a.coverage_per_execution.size(), b.coverage_per_execution.size());
  for (std::size_t i = 0; i < a.coverage_per_execution.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.coverage_per_execution[i], b.coverage_per_execution[i]);
  }
  ASSERT_EQ(a.system.size(), b.system.size());
  for (std::size_t r = 0; r < a.system.size(); ++r) {
    const auto& ra = a.system.rules()[r];
    const auto& rb = b.system.rules()[r];
    ASSERT_EQ(ra.window(), rb.window());
    for (std::size_t j = 0; j < ra.window(); ++j) EXPECT_EQ(ra.genes()[j], rb.genes()[j]);
    EXPECT_DOUBLE_EQ(ra.fitness(), rb.fitness());
  }
}

TEST(ParallelTrain, IslandsMatchSequentialExactlyAllExecutions) {
  const TimeSeries s = noisy_sine(400);
  const WindowDataset train(s, 4, 1);
  // Coverage target 100 %: both schedules run every execution.
  const auto cfg = config_with(3, 100.0);
  const auto sequential = ef::core::train(
      train, {.config = cfg, .parallelism = TrainParallelism::kSequential});
  const auto islands =
      ef::core::train(train, {.config = cfg, .parallelism = TrainParallelism::kIslands});
  expect_same_result(sequential, islands);
}

TEST(ParallelTrain, IslandsMatchSequentialWithEarlyStop) {
  const TimeSeries s = noisy_sine(400);
  const WindowDataset train(s, 4, 1);
  // Loose target: the sequential schedule stops after execution 1; the
  // island one must union the same prefix.
  const auto cfg = config_with(4, 50.0);
  const auto sequential = ef::core::train(
      train, {.config = cfg, .parallelism = TrainParallelism::kSequential});
  const auto islands =
      ef::core::train(train, {.config = cfg, .parallelism = TrainParallelism::kIslands});
  EXPECT_LT(sequential.executions, 4u);  // early stop actually happened
  expect_same_result(sequential, islands);
}

TEST(ParallelTrain, AutoMatchesPinnedSchedules) {
  const TimeSeries s = noisy_sine(300);
  const WindowDataset train(s, 4, 1);
  const auto cfg = config_with(2, 100.0);
  const auto automatic = ef::core::train(train, {.config = cfg});
  const auto sequential = ef::core::train(
      train, {.config = cfg, .parallelism = TrainParallelism::kSequential});
  expect_same_result(automatic, sequential);
}

TEST(ParallelTrain, WorksOnExplicitPool) {
  const TimeSeries s = noisy_sine(300);
  const WindowDataset train(s, 4, 1);
  ef::util::ThreadPool pool(4);
  const auto cfg = config_with(3, 100.0);
  const auto islands = ef::core::train(
      train, {.config = cfg, .pool = &pool, .parallelism = TrainParallelism::kIslands});
  EXPECT_FALSE(islands.system.empty());
  // The binding guarantee is sequential equivalence, whatever the stop point.
  const auto sequential = ef::core::train(
      train, {.config = cfg, .parallelism = TrainParallelism::kSequential});
  expect_same_result(sequential, islands);
}

TEST(ParallelTrain, SeedOverrideLeavesConfigAlone) {
  const TimeSeries s = noisy_sine(300);
  const WindowDataset train(s, 4, 1);
  const auto cfg = config_with(1, 100.0);  // cfg.evolution.seed == 9

  auto override_cfg = cfg;
  override_cfg.evolution.seed = 123;
  const auto via_config = ef::core::train(
      train, {.config = override_cfg, .parallelism = TrainParallelism::kSequential});
  const auto via_option = ef::core::train(
      train,
      {.config = cfg, .parallelism = TrainParallelism::kSequential, .seed = 123});
  expect_same_result(via_config, via_option);
}

TEST(ParallelTrain, InvalidConfigThrows) {
  const TimeSeries s = noisy_sine(300);
  const WindowDataset train(s, 4, 1);
  RuleSystemConfig cfg = config_with(0, 90.0);
  EXPECT_THROW(
      (void)ef::core::train(train,
                            {.config = cfg, .parallelism = TrainParallelism::kIslands}),
      std::invalid_argument);
}

TEST(ParallelTrain, TelemetryWithIslandsThrows) {
  const TimeSeries s = noisy_sine(300);
  const WindowDataset train(s, 4, 1);
  const auto cfg = config_with(2, 100.0);
  ef::core::TelemetryCollector collector;
  TrainOptions options;
  options.config = cfg;
  options.parallelism = TrainParallelism::kIslands;
  options.telemetry = collector.sink();
  EXPECT_THROW((void)ef::core::train(train, options), std::invalid_argument);
}

TEST(ParallelTrain, AutoWithTelemetryFallsBackToSequential) {
  const TimeSeries s = noisy_sine(300);
  const WindowDataset train(s, 4, 1);
  auto cfg = config_with(2, 100.0);
  cfg.evolution.telemetry_stride = 50;
  ef::core::TelemetryCollector collector;
  TrainOptions options;
  options.config = cfg;
  options.telemetry = collector.sink();  // kAuto must not pick islands here
  const auto result = ef::core::train(train, options);
  EXPECT_FALSE(result.system.empty());
  EXPECT_FALSE(collector.empty());
}

// ---- predict_with_bound -----------------------------------------------------

TEST(PredictWithBound, AbstainsWithNoVotes) {
  const ef::core::RuleSystem empty;
  EXPECT_FALSE(empty.predict_with_bound(std::vector<double>{1.0}).has_value());
}

TEST(PredictWithBound, SingleRuleBoundIsItsError) {
  using ef::core::Interval;
  using ef::core::Rule;
  Rule r({Interval(0, 10)});
  ef::core::PredictingPart part;
  part.fit.coeffs = {0.0, 5.0};
  part.fit.max_abs_residual = 0.25;
  part.fitness = 1.0;
  r.set_predicting(part);
  ef::core::RuleSystem system;
  system.add_rules({std::move(r)}, false, -1.0);

  const auto out = system.predict_with_bound(std::vector<double>{2.0});
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->value, 5.0);
  EXPECT_DOUBLE_EQ(out->bound, 0.25);  // no disagreement term with one voter
  EXPECT_EQ(out->votes, 1u);
}

TEST(PredictWithBound, DisagreementWidensBound) {
  using ef::core::Interval;
  using ef::core::Rule;
  const auto make = [](double p, double e) {
    Rule r({Interval(0, 10)});
    ef::core::PredictingPart part;
    part.fit.coeffs = {0.0, p};
    part.fit.max_abs_residual = e;
    part.fitness = 1.0;
    r.set_predicting(part);
    return r;
  };
  ef::core::RuleSystem system;
  system.add_rules({make(4.0, 0.1), make(8.0, 0.1)}, false, -1.0);
  const auto out = system.predict_with_bound(std::vector<double>{1.0});
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->value, 6.0);
  EXPECT_DOUBLE_EQ(out->bound, 2.1);  // |8−6| + 0.1
}

TEST(PredictWithBound, EmpiricallyCalibratedOnMackeyGlass) {
  const auto mg = ef::series::make_paper_mackey_glass();
  const WindowDataset train(mg.train, 4, 1);
  const WindowDataset test(mg.test, 4, 1);

  RuleSystemConfig cfg;
  cfg.evolution.population_size = 40;
  cfg.evolution.generations = 2000;
  cfg.evolution.emax = 0.12;
  cfg.evolution.seed = 77;
  cfg.max_executions = 2;
  cfg.coverage_target_percent = 90.0;
  const auto trained = ef::core::train(train, {.config = cfg});

  std::size_t covered = 0;
  std::size_t inside = 0;
  for (std::size_t i = 0; i < test.count(); ++i) {
    const auto out = trained.system.predict_with_bound(test.pattern(i));
    if (!out) continue;
    ++covered;
    if (std::abs(test.target(i) - out->value) <= out->bound) ++inside;
  }
  ASSERT_GT(covered, 50u);
  // Heuristic bound: expect strong but not perfect containment out-of-sample.
  EXPECT_GT(static_cast<double>(inside) / static_cast<double>(covered), 0.85);
}

}  // namespace
