#include "series/analysis.hpp"

#include <stdexcept>

namespace ef::series {

double autocorrelation(const TimeSeries& s, std::size_t lag) {
  if (lag >= s.size()) {
    throw std::invalid_argument("autocorrelation: lag >= series size");
  }
  const double mean = s.mean();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double d = s[i] - mean;
    den += d * d;
    if (i >= lag) num += d * (s[i - lag] - mean);
  }
  if (den == 0.0) throw std::invalid_argument("autocorrelation: constant series");
  return num / den;
}

std::vector<double> acf(const TimeSeries& s, std::size_t max_lag) {
  std::vector<double> out;
  out.reserve(max_lag + 1);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) out.push_back(autocorrelation(s, lag));
  return out;
}

std::optional<PeriodEstimate> detect_period(const TimeSeries& s, std::size_t min_lag,
                                            std::size_t max_lag, double threshold) {
  if (min_lag < 2 || max_lag <= min_lag) {
    throw std::invalid_argument("detect_period: need 2 <= min_lag < max_lag");
  }
  if (max_lag + 1 >= s.size()) {
    throw std::invalid_argument("detect_period: max_lag too large for series");
  }
  const std::vector<double> correlations = acf(s, max_lag + 1);

  std::optional<PeriodEstimate> best;
  for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
    const double here = correlations[lag];
    // Local maximum of the ACF above the threshold.
    if (here < threshold) continue;
    if (correlations[lag - 1] <= here && here >= correlations[lag + 1]) {
      if (!best || here > best->acf_value) best = PeriodEstimate{lag, here};
    }
  }
  return best;
}

}  // namespace ef::series
