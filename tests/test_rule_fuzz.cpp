// Randomised round-trip tests: arbitrary rules through encode→parse and
// whole rule systems through save→load, across many seeds.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/rule.hpp"
#include "core/rule_system.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystem;

Rule random_rule(ef::util::Rng& rng, std::size_t window) {
  std::vector<Interval> genes;
  for (std::size_t j = 0; j < window; ++j) {
    if (rng.bernoulli(0.25)) {
      genes.push_back(Interval::wildcard());
      continue;
    }
    double a = rng.uniform(-1e3, 1e3);
    double b = rng.uniform(-1e3, 1e3);
    if (a > b) std::swap(a, b);
    genes.emplace_back(a, b);
  }
  return Rule(std::move(genes));
}

Rule with_random_predicting(Rule r, ef::util::Rng& rng) {
  ef::core::PredictingPart part;
  part.fit.coeffs.resize(r.window() + 1);
  for (double& c : part.fit.coeffs) c = rng.uniform(-10, 10);
  part.fit.max_abs_residual = rng.uniform(0, 5);
  part.fit.mean_prediction = rng.uniform(-100, 100);
  part.fit.degenerate = rng.bernoulli(0.2);
  part.matches = rng.index(1000);
  part.fitness = rng.uniform(-5, 50);
  r.set_predicting(part);
  return r;
}

class RuleFuzzTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RuleFuzzTest, EncodeParseRoundTripPreservesGenes) {
  ef::util::Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t window = 1 + rng.index(30);
    const Rule original = random_rule(rng, window);
    const Rule parsed = Rule::parse(original.encode());
    ASSERT_EQ(parsed.window(), original.window());
    for (std::size_t j = 0; j < window; ++j) {
      // encode() prints with limited precision; compare membership on probe
      // points instead of bit equality for bounded genes.
      ASSERT_EQ(parsed.genes()[j].is_wildcard(), original.genes()[j].is_wildcard()) << j;
      if (original.genes()[j].is_wildcard()) continue;
      const double mid = original.genes()[j].midpoint();
      EXPECT_TRUE(parsed.genes()[j].contains(mid));
    }
  }
}

TEST_P(RuleFuzzTest, SaveLoadRoundTripPreservesBehaviour) {
  ef::util::Rng rng(GetParam() + 500);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t window = 1 + rng.index(12);
    std::vector<Rule> rules;
    const std::size_t count = 1 + rng.index(10);
    for (std::size_t r = 0; r < count; ++r) {
      rules.push_back(with_random_predicting(random_rule(rng, window), rng));
    }
    RuleSystem original;
    original.add_rules(std::move(rules), false, -1e9);

    std::stringstream buffer;
    original.save(buffer);
    const RuleSystem loaded = RuleSystem::load(buffer);
    ASSERT_EQ(loaded.size(), original.size());

    // Behavioural equivalence on random probe windows.
    for (int probe = 0; probe < 30; ++probe) {
      std::vector<double> w(window);
      for (double& x : w) x = rng.uniform(-1200, 1200);
      const auto a = original.forecast(w).as_optional();
      const auto b = loaded.forecast(w).as_optional();
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        ASSERT_NEAR(*a, *b, 1e-9);
      }
      ASSERT_EQ(original.vote_count(w), loaded.vote_count(w));
    }
  }
}

TEST_P(RuleFuzzTest, CorruptedSaveFilesThrowInsteadOfCrashing) {
  ef::util::Rng rng(GetParam() + 9000);
  // Build one valid serialisation, then corrupt it in assorted ways; load
  // must throw std::exception (never crash or silently succeed with
  // garbage sizes).
  RuleSystem original;
  std::vector<Rule> rules;
  for (int r = 0; r < 4; ++r) {
    rules.push_back(with_random_predicting(random_rule(rng, 5), rng));
  }
  original.add_rules(std::move(rules), false, -1e9);
  std::stringstream buffer;
  original.save(buffer);
  const std::string valid = buffer.str();

  const auto expect_throws = [](const std::string& text) {
    std::stringstream in(text);
    EXPECT_THROW((void)RuleSystem::load(in), std::exception) << text.substr(0, 60);
  };

  // Truncations at random points (but inside the body, so the header-only
  // prefix cases are included too).
  for (int t = 0; t < 10; ++t) {
    const std::size_t cut = 22 + rng.index(valid.size() - 22);
    std::string truncated = valid.substr(0, cut);
    std::stringstream in(truncated);
    try {
      const RuleSystem loaded = RuleSystem::load(in);
      // A cut exactly at a rule boundary can still parse if the declared
      // count was already satisfied — only then may load succeed.
      EXPECT_LE(loaded.size(), original.size());
    } catch (const std::exception&) {
      // expected for most cut points
    }
  }

  // Header corruption always throws.
  expect_throws("evoforecast-rules v999\n0\n");
  expect_throws("not a rules file at all");
  // Non-numeric gene bounds.
  std::string bad_gene = valid;
  const auto pos = bad_gene.find(' ', 25);
  ASSERT_NE(pos, std::string::npos);
  bad_gene.replace(pos + 1, 3, "xyz");
  expect_throws(bad_gene);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleFuzzTest, testing::Values(1u, 2u, 3u));

}  // namespace
