// rule_system.hpp — the final predictor: a union of evolved rule sets
// (paper §3.4).
//
// "After each execution the solutions obtained … are added to the obtained
// in previous executions. The number of executions is determined by the
// percentage of the search space covered by the rules." At query time every
// matching rule votes with its hyperplane output and the system answers with
// the mean; windows matched by no rule are abstentions, reported through
// std::optional. Coverage percentage is the paper's headline secondary
// metric.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/aggregation.hpp"
#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/prediction.hpp"
#include "core/rule.hpp"
#include "core/telemetry.hpp"
#include "series/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ef::core {

class RuleSystem {
 public:
  RuleSystem() = default;

  /// Add a population's rules. When `discard_unfit` is set, rules whose
  /// fitness is <= `f_min` (never matched, or error >= EMAX) are dropped —
  /// they carry no usable predicting part. Unevaluated rules are always
  /// dropped.
  void add_rules(std::vector<Rule> rules, bool discard_unfit, double f_min);

  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }
  [[nodiscard]] const std::vector<Rule>& rules() const noexcept { return rules_; }

  /// Forecast for one window (paper §3.4: matching rules vote with their
  /// hyperplane outputs; kMean is the paper's aggregation, others are
  /// Ablation D). The returned Prediction carries the value, the vote count
  /// and the abstention flag in one place.
  [[nodiscard]] Prediction forecast(std::span<const double> window,
                                    Aggregation how = Aggregation::kMean) const;

  /// Batched forecasts for `flat_windows.size() / window` row-major packed
  /// windows. Matching runs rule-outer over a lag-major transpose of the
  /// batch (the same vectorized kernels training uses), parallel over
  /// windows via `pool` (nullptr = shared pool). Element i equals
  /// forecast(flat_windows.subspan(i*window, window), how) exactly,
  /// including abstention positions and vote counts. Throws
  /// std::invalid_argument when window == 0 or flat_windows.size() is not a
  /// multiple of window.
  [[nodiscard]] std::vector<Prediction> forecast_batch(std::span<const double> flat_windows,
                                                       std::size_t window,
                                                       Aggregation how = Aggregation::kMean,
                                                       util::ThreadPool* pool = nullptr) const;

  /// Point forecast with a heuristic uncertainty bound derived from the
  /// voters' training errors and their disagreement:
  ///   bound = max_k ( e_k + |v_k − value| )
  /// Each voter guaranteed |target − v_k| ≤ e_k on its *training* region, so
  /// the bound is exact in-sample and an empirically calibrated heuristic
  /// out-of-sample (tested ≥ ~90 % containment on held-out data).
  struct BoundedForecast {
    double value = 0.0;
    double bound = 0.0;
    std::size_t votes = 0;
  };
  [[nodiscard]] std::optional<BoundedForecast> predict_with_bound(
      std::span<const double> window, Aggregation how = Aggregation::kMean) const;

  /// Number of rules matching a window (0 = abstention).
  [[nodiscard]] std::size_t vote_count(std::span<const double> window) const;

  /// Forecast every pattern of a dataset; abstentions are nullopt. Parallel
  /// over patterns via `pool` (nullptr = shared pool).
  [[nodiscard]] series::PartialForecast forecast_dataset(
      const WindowDataset& data, util::ThreadPool* pool = nullptr) const;

  /// Dataset forecast under an alternative aggregation strategy.
  [[nodiscard]] series::PartialForecast forecast_dataset(
      const WindowDataset& data, Aggregation how, util::ThreadPool* pool = nullptr) const;

  /// Percentage of the dataset's patterns matched by at least one rule.
  [[nodiscard]] double coverage_percent(const WindowDataset& data,
                                        util::ThreadPool* pool = nullptr) const;

  /// Text serialisation: one rule per line — genes, then the fitted
  /// coefficients and stats, fully restoring predictive behaviour on load.
  void save(std::ostream& out) const;
  [[nodiscard]] static RuleSystem load(std::istream& in);

  /// Human-readable summary: one line per rule (fitness-descending, at most
  /// `top_n`; 0 = all) with specificity, matches, error and prediction —
  /// the interpretability dividend of a Michigan population.
  void describe(std::ostream& out, std::size_t top_n = 10) const;

  /// Union with another system's rules (the §3.4 multi-execution union as a
  /// public operation — combine separately trained systems, e.g. from
  /// different horizons of the same τ or distributed training).
  void merge(const RuleSystem& other);

 private:
  std::vector<Rule> rules_;
};

/// Result of the coverage-driven outer training loop.
struct TrainResult {
  RuleSystem system;
  std::size_t executions = 0;
  double train_coverage_percent = 0.0;
  /// Coverage after each execution (monotonically non-decreasing).
  std::vector<double> coverage_per_execution;
};

/// How train() schedules the multi-execution outer loop.
enum class TrainParallelism {
  /// Islands when they can help (max_executions > 1, multi-worker pool, no
  /// telemetry sink), sequential otherwise. Both schedules produce exactly
  /// the same TrainResult, so this is safe as the default.
  kAuto,
  /// One execution after another on `pool`; supports telemetry.
  kSequential,
  /// All executions concurrently, one island each (each island evaluates
  /// serially to avoid nested pool waits), unioned in island order until the
  /// coverage target is met. Identical result to kSequential — wall-clock
  /// only (and wasted islands when the target is hit early). Telemetry is
  /// rejected here: interleaved records from concurrent islands would be
  /// unordered.
  kIslands,
};

/// Everything train() needs besides the data. Aggregate — designated
/// initializers work: train(data, {.config = cfg, .parallelism = …}).
struct TrainOptions {
  RuleSystemConfig config;
  /// Worker pool (nullptr = ThreadPool::shared()).
  util::ThreadPool* pool = nullptr;
  TrainParallelism parallelism = TrainParallelism::kAuto;
  /// Per-generation sink; forces the sequential schedule under kAuto and
  /// throws std::invalid_argument when combined with kIslands.
  TelemetrySink telemetry = {};
  /// When set, overrides config.evolution.seed for this run (the config
  /// stays untouched — handy for seed sweeps over one shared config).
  std::optional<std::uint64_t> seed = std::nullopt;
};

/// Train a rule system: up to config.max_executions independent evolutions
/// (execution 0 uses the configured seed verbatim, later ones fork from it),
/// unioning the resulting populations until the training coverage target is
/// met (paper §3.4). The single entry point for both the sequential and the
/// island-parallel schedule — see TrainOptions.
[[nodiscard]] TrainResult train(const WindowDataset& data, const TrainOptions& options = {});

/// Incremental update (online learning extension): warm-start further
/// evolution from an existing system when new training data arrives. The
/// system's rules are re-evaluated on `train` (stale predicting parts are
/// refitted), evolved for `config.evolution.generations` more generations,
/// and the refreshed population replaces the old system's contents. Rules
/// whose window length no longer matches the data are dropped.
[[nodiscard]] TrainResult extend_rule_system(const RuleSystem& existing,
                                             const WindowDataset& train,
                                             const RuleSystemConfig& config,
                                             util::ThreadPool* pool = nullptr);

}  // namespace ef::core
