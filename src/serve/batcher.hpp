// serve/batcher.hpp — micro-batching of concurrent prediction requests.
//
// Under concurrent load, dispatching each request alone wastes the batch
// fast path: RuleIndex::predict_batch amortises candidate scans across
// windows and parallelises over the thread pool. The batcher queues
// incoming requests; a dispatcher thread collects whatever arrived within a
// short coalescing delay (bounded by max_batch), groups the batch by model
// snapshot + aggregation, and runs each group through the batch fast path.
// Callers block on a future, so the API stays synchronous while the
// execution is batched. A single request on an idle service pays at most
// the coalescing delay (first request in a round dispatches immediately
// when the queue stays short — see the loop's two-phase wait).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/aggregation.hpp"
#include "core/prediction.hpp"
#include "obs/timeline.hpp"
#include "serve/model_store.hpp"
#include "util/thread_pool.hpp"

namespace ef::serve {

struct BatcherConfig {
  std::size_t max_batch = 64;  ///< dispatch at this many queued requests
  std::chrono::microseconds max_delay{200};  ///< max coalescing wait
};

class MicroBatcher {
 public:
  /// Batch results are plain core predictions — value, votes and abstention
  /// travel together from the kernel to the response.
  using Result = core::Prediction;

  explicit MicroBatcher(BatcherConfig config = {}, util::ThreadPool* pool = nullptr);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueue one single-step prediction. The future resolves once the
  /// request's batch has been dispatched. Throws std::runtime_error after
  /// shutdown() has begun.
  [[nodiscard]] std::future<Result> submit(std::shared_ptr<const LoadedModel> model,
                                           std::vector<double> window,
                                           core::Aggregation agg);

  /// Completion for submit_async: exactly one of (result, error) is
  /// meaningful — error != nullptr means the batch kernel threw. Runs on
  /// the dispatcher thread; keep it cheap and non-blocking (the reactor
  /// marshals back to its own thread via an eventfd-signalled queue).
  using Completion = std::function<void(Result result, std::exception_ptr error)>;

  /// Callback twin of submit(): same queueing, grouping and tracing, but
  /// the caller's thread never blocks — this is what lets one reactor
  /// thread keep thousands of pipelined requests in flight. Throws
  /// std::runtime_error after shutdown() has begun (the completion is NOT
  /// invoked in that case).
  void submit_async(std::shared_ptr<const LoadedModel> model,
                    std::vector<double> window, core::Aggregation agg,
                    Completion done);

  /// Stop accepting new requests, dispatch everything already queued, then
  /// stop the dispatcher thread. Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] std::size_t pending() const;

 private:
  struct Item {
    std::shared_ptr<const LoadedModel> model;
    std::vector<double> window;
    core::Aggregation agg = core::Aggregation::kMean;
    std::promise<Result> promise;  ///< used when done == nullptr (blocking submit)
    Completion done;               ///< used by submit_async
    // Timeline handoff across the thread hop: the submitting request's trace
    // context plus its enqueue time, so the dispatcher can emit the
    // retrospective serve.queue / serve.batch / serve.match spans under the
    // right trace id. Inactive (all-zero) when tracing is off.
    obs::TraceContext trace;
    std::int64_t t_enqueue_us = 0;
  };

  void dispatcher_loop();
  static void run_batch(std::vector<Item> batch, util::ThreadPool* pool);
  static void complete_item(Item& item, Result result, std::exception_ptr error);

  BatcherConfig config_;
  util::ThreadPool* pool_;  ///< may be nullptr (shared pool)

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Item> queue_;
  bool accepting_ = true;
  bool stopping_ = false;
  std::thread dispatcher_;
};

}  // namespace ef::serve
