// fleet/bulk_trainer.hpp — one evolved rule system per series, in parallel.
//
// The paper trains one rule system per series; a production fleet is
// thousands-to-millions of them. Training is embarrassingly parallel across
// series, so the bulk trainer fans the fleet out over the shared thread
// pool — one series per outer chunk, each inner train() forced onto a
// single-worker schedule so pool workers never block on nested
// parallel_for waits (the same inversion the island trainer uses).
//
// Determinism is per-series, not per-run-order: every series derives its
// seed from (base seed, series id) alone, so a fleet trained with 1 thread,
// 64 threads, or with the series list shuffled produces bit-identical rule
// systems per id. That is what makes `.efr` v2 containers reproducible
// artifacts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/rule_system.hpp"
#include "fleet/long_csv.hpp"
#include "util/thread_pool.hpp"

namespace ef::fleet {

struct FleetTrainOptions {
  /// Per-series training configuration; evolution.seed is the fleet-wide
  /// base seed that per-series seeds derive from.
  core::RuleSystemConfig config;
  /// Embedding: window length D, horizon τ, stride s.
  std::size_t window = 6;
  std::size_t horizon = 1;
  std::size_t stride = 1;
  /// Worker pool for the across-series fan-out (nullptr = shared pool).
  util::ThreadPool* pool = nullptr;
};

/// Outcome for one series: a trained system, or a skip with the reason
/// (series too short for one training pattern is the common case — skips
/// are reported, never silent).
struct TrainedSeries {
  std::string id;
  core::RuleSystem system;
  std::size_t executions = 0;
  double train_coverage_percent = 0.0;
  std::uint64_t seed = 0;  ///< the derived per-series seed actually used
  bool skipped = false;
  std::string skip_reason;
};

struct FleetTrainResult {
  std::vector<TrainedSeries> models;  ///< input order, skips included
  std::size_t trained = 0;
  std::size_t skipped = 0;
  double wall_seconds = 0.0;
  /// Σ rules over trained systems.
  std::size_t total_rules = 0;
};

/// Deterministic per-series seed: FNV-1a over the id folded into the base
/// seed, finished with a splitmix64 avalanche so adjacent ids ("s1","s2")
/// land far apart in seed space.
[[nodiscard]] std::uint64_t derive_series_seed(std::uint64_t base_seed, std::string_view id);

/// Train the whole fleet. Per-series failures other than "too short"
/// (config validation errors, degenerate series) are also recorded as
/// skips with the exception text — one bad series never aborts the fleet.
[[nodiscard]] FleetTrainResult train_fleet(std::span<const SeriesRecord> fleet,
                                           const FleetTrainOptions& options);

}  // namespace ef::fleet
