#include "series/transforms.hpp"

#include <cmath>
#include <stdexcept>

namespace ef::series {

Differenced difference(const TimeSeries& s, std::size_t lag) {
  if (lag == 0) throw std::invalid_argument("difference: lag must be > 0");
  if (s.size() <= lag) {
    throw std::invalid_argument("difference: series of size " + std::to_string(s.size()) +
                                " too short for lag " + std::to_string(lag));
  }
  std::vector<double> body;
  body.reserve(s.size() - lag);
  for (std::size_t i = lag; i < s.size(); ++i) body.push_back(s[i] - s[i - lag]);

  Differenced out;
  out.series = TimeSeries(std::move(body), s.name() + "/diff" + std::to_string(lag));
  out.prefix.assign(s.values().begin(), s.values().begin() + static_cast<long>(lag));
  out.lag = lag;
  return out;
}

TimeSeries undifference(const Differenced& d) {
  if (d.lag == 0 || d.prefix.size() != d.lag) {
    throw std::invalid_argument("undifference: prefix size must equal lag");
  }
  std::vector<double> out(d.prefix.begin(), d.prefix.end());
  out.reserve(d.lag + d.series.size());
  for (std::size_t i = 0; i < d.series.size(); ++i) {
    out.push_back(out[i] + d.series[i]);  // x_{i+lag} = x_i + y_i
  }
  return TimeSeries(std::move(out), d.series.name() + "/undiff");
}

TimeSeries log1p_transform(const TimeSeries& s) {
  std::vector<double> out;
  out.reserve(s.size());
  for (const double v : s.values()) {
    if (v <= -1.0) {
      throw std::invalid_argument("log1p_transform: value <= -1 not representable");
    }
    out.push_back(std::log1p(v));
  }
  return TimeSeries(std::move(out), s.name() + "/log1p");
}

TimeSeries expm1_transform(const TimeSeries& s) {
  std::vector<double> out;
  out.reserve(s.size());
  for (const double v : s.values()) out.push_back(std::expm1(v));
  return TimeSeries(std::move(out), s.name() + "/expm1");
}

TimeSeries moving_average(const TimeSeries& s, std::size_t half) {
  if (s.empty()) return s;
  std::vector<double> out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const std::size_t begin = i >= half ? i - half : 0;
    const std::size_t end = std::min(s.size(), i + half + 1);
    double acc = 0.0;
    for (std::size_t j = begin; j < end; ++j) acc += s[j];
    out.push_back(acc / static_cast<double>(end - begin));
  }
  return TimeSeries(std::move(out), s.name() + "/ma" + std::to_string(2 * half + 1));
}

}  // namespace ef::series
