// bench_table1_venice — reproduces Table 1 of the paper: Venice Lagoon
// water-level forecasting across horizons τ ∈ {1,4,12,24,28,48,72,96} with
// D = 24 hourly inputs. Columns: coverage %, rule-system RMSE over the
// covered subset, and our re-trained comparators (MLP = the paper's "Error
// NN", plus the global AR and ARMA linear references the introduction
// cites). The paper's printed numbers are quoted alongside for shape
// comparison.
//
// The experiment logic lives in src/experiments (shared with the
// shape-regression tests); this binary is the CLI + table printer.
// Default scale: 8 000 train / 2 000 validation hours, 6 000 generations —
// minutes on a laptop. --full switches to the paper's 45 000/10 000 and
// 75 000 generations.
#include <cstdio>

#include "bench_common.hpp"
#include "experiments/experiments.hpp"
#include "util/cli.hpp"
#include "util/running_stats.hpp"

namespace {

struct PaperRow {
  std::size_t horizon;
  double coverage_percent;  // paper "Percentage of prediction"
  double error_rs;          // paper "Error RS"
  double error_nn;          // paper "Error NN" (−1 = not reported)
};

constexpr PaperRow kPaperTable1[] = {
    {1, 91.3, 3.37, 3.30},   {4, 99.1, 8.26, 9.55},    {12, 98.0, 8.46, 11.38},
    {24, 99.3, 8.70, 11.64}, {28, 98.8, 11.62, 15.74}, {48, 97.8, 11.28, -1},
    {72, 99.7, 14.45, -1},   {96, 99.5, 16.04, -1},
};

}  // namespace

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");

  ef::experiments::VeniceRowConfig base;
  base.train_hours =
      static_cast<std::size_t>(cli.get_int("train-hours", full ? 45000 : 8000));
  base.validation_hours =
      static_cast<std::size_t>(cli.get_int("validation-hours", full ? 10000 : 2000));
  base.window = static_cast<std::size_t>(cli.get_int("window", 24));
  base.generations =
      static_cast<std::size_t>(cli.get_int("generations", full ? 75000 : 6000));
  base.population = static_cast<std::size_t>(cli.get_int("population", 100));
  base.max_executions = static_cast<std::size_t>(cli.get_int("executions", 8));
  base.mlp_epochs = full ? 60 : 30;
  // EMAX in centimetres: <= 0 uses the calibrated horizon schedule
  // (venice_emax_schedule; rationale in EXPERIMENTS.md).
  base.emax = cli.get_double("emax", -1.0);
  const auto seed_base = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto n_seeds = static_cast<std::size_t>(cli.get_int("seeds", 1));
  // --horizons 1,24 restricts the sweep (useful for --full single rows).
  const auto horizon_filter = ef::bench::parse_size_list(cli.get_string("horizons", ""));

  std::printf("Table 1 reproduction — Venice Lagoon water level (synthetic substitute)\n");
  std::printf("train=%zu h, validation=%zu h, D=%zu, pop=%zu, generations=%zu, seed=%llu\n",
              base.train_hours, base.validation_hours, base.window, base.population,
              base.generations, static_cast<unsigned long long>(seed_base));
  ef::bench::print_rule('=');

  std::printf("%4s | %7s %8s %8s %7s | %8s %8s %8s | %7s %8s %8s %8s\n", "tau",
              "cov%", "rmseRS", "maeRS", "rules", "rmseMLP", "rmseAR", "rmseARMA",
              "papCov%", "papRS", "papNN", "p(wilc)");
  ef::bench::print_rule();

  for (const PaperRow& row : kPaperTable1) {
    if (!ef::bench::selected(horizon_filter, row.horizon)) continue;
    ef::util::RunningStats coverage_stats;
    ef::util::RunningStats rmse_stats;
    ef::util::RunningStats mae_stats;
    ef::experiments::VeniceRowResult last{};
    for (std::size_t s = 0; s < n_seeds; ++s) {
      ef::experiments::VeniceRowConfig cfg = base;
      cfg.horizon = row.horizon;
      cfg.seed = seed_base + 1000 * s;
      last = ef::experiments::run_venice_row(cfg);
      coverage_stats.add(last.rs.coverage_percent);
      rmse_stats.add(last.rs.rmse);
      mae_stats.add(last.rs.mae);
    }

    std::printf("%4zu | %6.1f%% %8.2f %8.2f %7zu | %8.2f %8.2f %8.2f | %6.1f%% %8.2f ",
                row.horizon, coverage_stats.mean(), rmse_stats.mean(), mae_stats.mean(),
                last.rs.rules, last.rmse_mlp, last.rmse_ar, last.rmse_arma,
                row.coverage_percent, row.error_rs);
    if (row.error_nn >= 0.0) {
      std::printf("%8.2f", row.error_nn);
    } else {
      std::printf("%8s", "-");
    }
    // Paired Wilcoxon p (RS vs MLP on covered windows, last seed's run).
    std::printf("  p=%.0e\n", last.p_rs_vs_mlp);
    if (n_seeds > 1) {
      std::printf("     | ±%5.1f%% ±%7.2f   (sd over %zu seeds)\n",
                  coverage_stats.stddev(), rmse_stats.stddev(), n_seeds);
    }
    std::fflush(stdout);
  }

  ef::bench::print_rule();
  std::printf(
      "Shape checks vs the paper: (1) coverage stays near-constant (>90%%) as tau grows;\n"
      "(2) rule-system RMSE < MLP RMSE for tau > 1 and roughly ties at tau = 1;\n"
      "(3) absolute errors grow with tau for every model.\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
