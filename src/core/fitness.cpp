#include "core/fitness.hpp"

namespace ef::core {

Evaluator::Evaluator(const MatchEngine& engine, const EvolutionConfig& config,
                     RegressionOptions regression)
    : engine_(engine), config_(config), regression_(regression) {}

namespace {

/// Regress-and-score for an already-matched rule: the shared tail of the
/// single-rule and batched paths, so both produce byte-identical
/// PredictingParts by construction.
void score_matched(Rule& rule, const std::vector<std::size_t>& matched,
                   const MatchEngine& engine, const EvolutionConfig& config,
                   const RegressionOptions& regression) {
  PredictingPart part;
  part.matches = matched.size();
  if (matched.empty()) {
    // No matched window: no regression is definable. e_R is set to EMAX so
    // traces show the rule as "at the error bound"; fitness is f_min.
    part.fit.coeffs.assign(engine.data().window() + 1, 0.0);
    part.fit.max_abs_residual = config.emax;
    part.fit.degenerate = true;
    part.fitness = config.f_min;
  } else {
    part.fit = fit_hyperplane(engine.data(), matched, regression);
    part.fitness =
        fitness_value(part.matches, part.fit.max_abs_residual, config.emax, config.f_min);
  }
  rule.set_predicting(std::move(part));
}

}  // namespace

void Evaluator::evaluate(Rule& rule, std::vector<std::size_t>* keep_matches) const {
  std::vector<std::size_t> matched = engine_.match_indices(rule);
  score_matched(rule, matched, engine_, config_, regression_);
  if (keep_matches) *keep_matches = std::move(matched);
}

void Evaluator::evaluate_all(std::span<Rule> population,
                             std::vector<std::vector<std::size_t>>* keep_matches) const {
  std::vector<std::vector<std::size_t>> matched = engine_.match_all(population);
  // Batching materializes every rule's match set before any scoring, so the
  // regress-and-score tail can fan out across the pool: each rule's fit is
  // self-contained and writes only its own slot, making the result
  // bit-identical to the serial loop for any worker count. (The per-rule
  // evaluate() path interleaves match → score and stays serial.)
  if (population.size() > 1) {
    engine_.pool().parallel_for(0, population.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t k = b; k < e; ++k) {
        score_matched(population[k], matched[k], engine_, config_, regression_);
      }
    });
  } else {
    for (std::size_t k = 0; k < population.size(); ++k) {
      score_matched(population[k], matched[k], engine_, config_, regression_);
    }
  }
  if (keep_matches) *keep_matches = std::move(matched);
}

void Evaluator::evaluate_population(std::span<Rule> population,
                                    std::vector<std::vector<std::size_t>>* keep_matches,
                                    bool batched) const {
  if (batched) {
    evaluate_all(population, keep_matches);
    return;
  }
  if (keep_matches) keep_matches->assign(population.size(), {});
  for (std::size_t k = 0; k < population.size(); ++k) {
    evaluate(population[k], keep_matches ? &(*keep_matches)[k] : nullptr);
  }
}

}  // namespace ef::core
