#include "baselines/elman.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace ef::baselines {

void ElmanConfig::validate() const {
  if (hidden == 0) throw std::invalid_argument("ElmanConfig: hidden must be >= 1");
  if (learning_rate <= 0.0) throw std::invalid_argument("ElmanConfig: learning_rate > 0");
  if (lr_decay <= 0.0 || lr_decay > 1.0) {
    throw std::invalid_argument("ElmanConfig: lr_decay out of (0,1]");
  }
  if (epochs == 0) throw std::invalid_argument("ElmanConfig: epochs must be >= 1");
  if (grad_clip < 0.0) throw std::invalid_argument("ElmanConfig: grad_clip must be >= 0");
}

Elman::Elman(ElmanConfig config) : config_(config) { config_.validate(); }

double Elman::forward(std::span<const double> window,
                      std::vector<std::vector<double>>& states) const {
  const std::size_t h = config_.hidden;
  states.assign(window.size() + 1, std::vector<double>(h, 0.0));  // states[0] = h_0 = 0
  std::vector<double> pre(h, 0.0);
  for (std::size_t t = 0; t < window.size(); ++t) {
    gemv(w_rec_, states[t], pre);
    for (std::size_t i = 0; i < h; ++i) {
      states[t + 1][i] = std::tanh(pre[i] + w_in_[i] * window[t] + b_[i]);
    }
  }
  return dot(w_out_, states.back()) + b_out_;
}

void Elman::fit(const core::WindowDataset& train) {
  const std::size_t h = config_.hidden;
  util::Rng rng(config_.seed);

  // Scalar standardisation over the whole input stream and over targets.
  input_mean_ = 0.0;
  input_sd_ = 1.0;
  target_mean_ = 0.0;
  target_sd_ = 1.0;
  if (config_.standardize) {
    const auto n = static_cast<double>(train.count());
    const auto d = static_cast<double>(train.window());
    for (std::size_t i = 0; i < train.count(); ++i) {
      for (const double v : train.pattern(i)) input_mean_ += v;
      target_mean_ += train.target(i);
    }
    input_mean_ /= n * d;
    target_mean_ /= n;
    double ivar = 0.0;
    double tvar = 0.0;
    for (std::size_t i = 0; i < train.count(); ++i) {
      for (const double v : train.pattern(i)) ivar += (v - input_mean_) * (v - input_mean_);
      tvar += (train.target(i) - target_mean_) * (train.target(i) - target_mean_);
    }
    input_sd_ = ivar > 0.0 ? std::sqrt(ivar / (n * d)) : 1.0;
    target_sd_ = tvar > 0.0 ? std::sqrt(tvar / n) : 1.0;
  }

  const double in_scale = std::sqrt(1.0 / 1.0);
  const double rec_scale = std::sqrt(1.0 / static_cast<double>(h));
  w_in_.assign(h, 0.0);
  for (double& v : w_in_) v = rng.uniform(-in_scale, in_scale);
  w_rec_ = Matrix(h, h);
  for (double& v : w_rec_.data()) v = rng.uniform(-rec_scale, rec_scale);
  b_.assign(h, 0.0);
  w_out_.assign(h, 0.0);
  for (double& v : w_out_) v = rng.uniform(-rec_scale, rec_scale);
  b_out_ = 0.0;

  std::vector<std::size_t> order(train.count());
  std::iota(order.begin(), order.end(), 0);

  std::vector<std::vector<double>> states;
  std::vector<double> dh(h, 0.0);
  std::vector<double> dpre(h, 0.0);
  std::vector<double> dh_next(h, 0.0);

  Matrix g_rec(h, h);
  std::vector<double> g_in(h, 0.0);
  std::vector<double> g_b(h, 0.0);
  std::vector<double> g_out(h, 0.0);

  double lr = config_.learning_rate;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.shuffle) {
      for (std::size_t i = order.size(); i-- > 1;) {
        std::swap(order[i], order[rng.index(i + 1)]);
      }
    }

    double sq_err_sum = 0.0;
    std::vector<double> window_std;
    for (const std::size_t s : order) {
      const auto raw = train.pattern(s);
      window_std.assign(raw.begin(), raw.end());
      for (double& v : window_std) v = (v - input_mean_) / input_sd_;
      const std::span<const double> window = window_std;
      const double y = forward(window, states);
      const double err = y - (train.target(s) - target_mean_) / target_sd_;
      sq_err_sum += err * err;

      // BPTT. Gradients accumulate over the unrolled steps.
      g_rec.fill(0.0);
      std::fill(g_in.begin(), g_in.end(), 0.0);
      std::fill(g_b.begin(), g_b.end(), 0.0);
      double g_b_out = err;
      for (std::size_t i = 0; i < h; ++i) g_out[i] = err * states.back()[i];

      for (std::size_t i = 0; i < h; ++i) dh[i] = err * w_out_[i];
      for (std::size_t t = window.size(); t-- > 0;) {
        // dpre = dh ⊙ tanh'(h_{t+1})
        for (std::size_t i = 0; i < h; ++i) {
          const double a = states[t + 1][i];
          dpre[i] = dh[i] * (1.0 - a * a);
        }
        for (std::size_t i = 0; i < h; ++i) {
          g_in[i] += dpre[i] * window[t];
          g_b[i] += dpre[i];
        }
        rank1_update(g_rec, 1.0, dpre, states[t]);
        if (t > 0) {
          gemv_t(w_rec_, dpre, dh_next);
          dh = dh_next;
        }
      }

      // Optional global-norm clip over all gradients of this sample.
      if (config_.grad_clip > 0.0) {
        double norm_sq = dot(g_in, g_in) + dot(g_b, g_b) + dot(g_out, g_out) +
                         g_b_out * g_b_out + dot(g_rec.data(), g_rec.data());
        const double norm = std::sqrt(norm_sq);
        if (norm > config_.grad_clip) {
          const double scale = config_.grad_clip / norm;
          for (double& v : g_in) v *= scale;
          for (double& v : g_b) v *= scale;
          for (double& v : g_out) v *= scale;
          for (double& v : g_rec.data()) v *= scale;
          g_b_out *= scale;
        }
      }

      axpy(-lr, g_in, w_in_);
      axpy(-lr, g_b, b_);
      axpy(-lr, g_out, w_out_);
      axpy(-lr, g_rec.data(), w_rec_.data());
      b_out_ -= lr * g_b_out;
    }
    // Report the training MSE in raw target units.
    final_train_mse_ =
        sq_err_sum / static_cast<double>(train.count()) * target_sd_ * target_sd_;
    lr *= config_.lr_decay;
  }
  fitted_ = true;
}

double Elman::predict(std::span<const double> window) const {
  if (!fitted_) throw std::logic_error("Elman::predict before fit");
  std::vector<double> window_std(window.begin(), window.end());
  for (double& v : window_std) v = (v - input_mean_) / input_sd_;
  std::vector<std::vector<double>> states;
  return forward(window_std, states) * target_sd_ + target_mean_;
}

}  // namespace ef::baselines
