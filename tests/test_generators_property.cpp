// Cross-seed property sweeps over the synthetic data generators: the
// structural guarantees the experiments rely on must hold for every seed,
// not just the default one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "series/sunspot.hpp"
#include "series/venice.hpp"

namespace {

class VenicePropertyTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(VenicePropertyTest, RangeAndTidalStructure) {
  ef::series::VeniceParams params;
  params.seed = GetParam();
  const auto s = ef::series::generate_venice(15000, params);

  // Plausible lagoon range for every seed.
  EXPECT_GT(s.min(), -150.0);
  EXPECT_LT(s.max(), 350.0);
  EXPECT_GT(s.max() - s.min(), 80.0);  // real tidal dynamics, not flat

  // Tidal periodicity: diurnal-band autocorrelation beats a 3 h lag.
  const double mean = s.mean();
  const auto autocorr = [&](std::size_t lag) {
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      den += (s[i] - mean) * (s[i] - mean);
      if (i >= lag) num += (s[i] - mean) * (s[i - lag] - mean);
    }
    return num / den;
  };
  EXPECT_GT(autocorr(25), autocorr(3));
}

TEST_P(VenicePropertyTest, StormsAddExtremesForEverySeed) {
  ef::series::VeniceParams stormy;
  stormy.seed = GetParam();
  ef::series::VeniceParams calm = stormy;
  calm.storm_rate_per_hour = 0.0;
  const auto with_storms = ef::series::generate_venice(15000, stormy);
  const auto without = ef::series::generate_venice(15000, calm);
  // Pointwise: storms only ever add water.
  for (std::size_t i = 0; i < with_storms.size(); i += 37) {
    ASSERT_GE(with_storms[i], without[i] - 1e-9);
  }
  EXPECT_GT(with_storms.max(), without.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VenicePropertyTest,
                         testing::Values(1u, 1980u, 42u, 7777u, 123456u));

class SunspotPropertyTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SunspotPropertyTest, NonNegativeAndCyclic) {
  ef::series::SunspotParams params;
  params.seed = GetParam();
  const auto s = ef::series::generate_sunspots(2739, params);
  EXPECT_GE(s.min(), 0.0);
  EXPECT_GT(s.max(), 60.0);
  EXPECT_LT(s.max(), 500.0);

  // Cycles exist: the series repeatedly returns near quiet levels and
  // repeatedly exceeds half its maximum.
  const double high = 0.5 * s.max();
  int high_runs = 0;
  int quiet_runs = 0;
  bool in_high = false;
  bool in_quiet = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const bool h = s[i] > high;
    const bool q = s[i] < 20.0;
    if (h && !in_high) ++high_runs;
    if (q && !in_quiet) ++quiet_runs;
    in_high = h;
    in_quiet = q;
  }
  EXPECT_GE(high_runs, 5);
  EXPECT_GE(quiet_runs, 5);
}

TEST_P(SunspotPropertyTest, NoiseScalesWithActivity) {
  // Signal-dependent noise: month-over-month jumps should be larger at
  // maxima than at minima.
  ef::series::SunspotParams params;
  params.seed = GetParam();
  const auto s = ef::series::generate_sunspots(2739, params);
  double hi_jump = 0.0;
  std::size_t hi_n = 0;
  double lo_jump = 0.0;
  std::size_t lo_n = 0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    const double level = 0.5 * (s[i] + s[i - 1]);
    const double jump = std::abs(s[i] - s[i - 1]);
    if (level > 100.0) {
      hi_jump += jump;
      ++hi_n;
    } else if (level < 20.0) {
      lo_jump += jump;
      ++lo_n;
    }
  }
  ASSERT_GT(hi_n, 20u);
  ASSERT_GT(lo_n, 20u);
  EXPECT_GT(hi_jump / static_cast<double>(hi_n), 1.5 * lo_jump / static_cast<double>(lo_n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SunspotPropertyTest,
                         testing::Values(1749u, 2u, 99u, 31415u, 86420u));

}  // namespace
