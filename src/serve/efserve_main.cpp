// efserve — the evoforecast model server.
//
//   efserve tide=models/tide.efr sun=models/sun.efr [--port 7777] ...
//   efserve --train-demo demo.efr        # write a small demo model and exit
//
// Serves named .efr rule-system models over the JSON-lines TCP protocol
// (docs/SERVING.md), hot-reloading each file when its mtime changes.
// Graceful shutdown on SIGINT/SIGTERM: stop accepting, drain in-flight
// requests, emit the observability report (--report / --metrics-json).
//
// SIGUSR1 dumps live state without shutting down: the run report goes to
// stdout and the event-log flight recorder to stderr as JSON lines between
// "== flight recorder begin/end ==" markers. The same data is reachable
// over the wire via the "metrics"/"events" verbs and GET /metrics
// (Prometheus text), and live windowed rates/quantiles come from the
// background WindowedCollector started at boot.
//
// Fleet mode serves a whole `.efr` v2 container (built by eftrain) instead
// of — or alongside — named files:
//
//   efserve --container fleet.efr2 [--port 7777]
//
// Every series id in the container is a model name on the wire; the poller
// stats the one container file and swaps the whole fleet atomically when a
// repack lands (docs/FLEET.md).
//
// Flags:
//   --container PATH    serve every series of a .efr v2 container
//   --port N            listen port (default 7777; 0 = ephemeral, printed)
//   --host A            bind address (default 127.0.0.1)
//   --poll-ms N         model-file poll interval (default 500; 0 = no reload)
//   --cache-capacity N  prediction cache entries (default 65536; 0 = off)
//   --cache-shards N    cache shards (default 8)
//   --quantum X         cache window quantization grid (default 1e-9)
//   --batch-max N       micro-batch size cap (default 64)
//   --batch-delay-us N  micro-batch coalescing delay (default 200; 0 = no batching)
//   --threads N         prediction thread-pool size (default: hardware)
//   --reactor-threads N epoll reactor threads (default 0 = min(hardware, 4))
//   --max-pipeline N    pipelined requests in flight per connection (default 1024)
//   --drain-timeout-ms N  graceful-drain budget on shutdown (default 5000)
//   --slow-request-us X slow-request event threshold in µs (default 50000; 0 = off)
//   --quality-ledger N  per-model prediction-ledger capacity for live
//                       accuracy scoring via "observe" (default 1024; 0 = off)
//   --quality-window N  matured forecasts in the rolling quality window (default 256)
//   --quality-topk N    worst models exported as ef_quality_*{model=...} (default 5)
//   --drift-delta X     Page–Hinkley per-sample tolerance (default 0.05)
//   --drift-lambda X    Page–Hinkley detection threshold (default 5.0)
//   --drift-min-n N     samples before drift can fire (default 8)
//   --trace-sample X    timeline trace sample rate 0..1 (default: the
//                       EVOFORECAST_TRACE_SAMPLE environment variable)
//   --trace-out PATH    write the timeline as Chrome trace-event JSON on
//                       exit and on SIGUSR1 (arms tracing at rate 1.0 when
//                       no rate was configured)
//   --report / --metrics-json PATH / --metrics-csv PATH  on exit
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "core/rule_system.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/macros.hpp"
#include "obs/run_report.hpp"
#include "obs/timeline.hpp"
#include "obs/timeline_export.hpp"
#include "obs/window.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"
#include "serve/reactor.hpp"
#include "series/synthetic.hpp"
#include "util/cli.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define EFSERVE_HAVE_SIGNALS 1
#else
#define EFSERVE_HAVE_SIGNALS 0
#endif

namespace {

/// --trace-out destination; empty = no timeline dump.
std::string g_trace_out;

/// Write the timeline next to the flight recorder when --trace-out is set
/// (SIGUSR1 and exit both land here; each write replaces the file with the
/// current ring contents).
void dump_timeline() {
  if (g_trace_out.empty()) return;
  if (ef::obs::write_chrome_trace_file(g_trace_out)) {
    std::fprintf(stderr, "timeline trace written to %s\n", g_trace_out.c_str());
  } else {
    std::fprintf(stderr, "efserve: cannot write trace file '%s'\n", g_trace_out.c_str());
  }
}

/// Dump the run report (stdout) and the flight recorder (stderr) without
/// disturbing the serving path — the SIGUSR1 action.
void dump_live_report() {
  EVOFORECAST_COUNT("serve.report_dumps", 1);
  ef::obs::print_report(stdout);
  std::fflush(stdout);
  std::fputs("== flight recorder begin ==\n", stderr);
  const std::string lines = ef::obs::EventLog::global().dump_json_lines();
  std::fwrite(lines.data(), 1, lines.size(), stderr);
  std::fputs("== flight recorder end ==\n", stderr);
  dump_timeline();
  std::fflush(stderr);
}

#if EFSERVE_HAVE_SIGNALS
// Self-pipe: handlers write one byte (1 = stop, 2 = dump report); main
// blocks on read. Both ends async-signal-safe, no polling loop.
int g_signal_pipe[2] = {-1, -1};

extern "C" void handle_stop_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(g_signal_pipe[1], &byte, 1);
}

extern "C" void handle_dump_signal(int) {
  const char byte = 2;
  [[maybe_unused]] const auto n = ::write(g_signal_pipe[1], &byte, 1);
}

void wait_for_stop_signal() {
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "efserve: pipe() failed; running until killed\n");
    for (;;) ::pause();
  }
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  struct sigaction dump_action {};
  dump_action.sa_handler = handle_dump_signal;
  ::sigaction(SIGUSR1, &dump_action, nullptr);
  for (;;) {
    char byte = 0;
    const auto n = ::read(g_signal_pipe[0], &byte, 1);
    if (n < 0) continue;  // EINTR
    if (n == 0 || byte == 1) return;
    if (byte == 2) dump_live_report();  // SIGUSR1: report, keep serving
  }
}
#else
void wait_for_stop_signal() {
  std::fprintf(stderr, "efserve: no signal support; press Ctrl-C to hard-exit\n");
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}
#endif

/// Train a small one-step demo model on a noisy sine and save it — gives CI
/// and first-time users a .efr to serve without a full training run.
int train_demo(const std::string& path, std::uint64_t seed) {
  std::printf("training demo model (noisy sine, D=6, tau=1)...\n");
  const auto series = ef::series::generate_sine(1500, {1.0, 25.0, 0.0, 0.0, 0.05, 9});
  const ef::core::WindowDataset train(series, 6, 1);
  ef::core::RuleSystemConfig config;
  config.evolution.population_size = 50;
  config.evolution.generations = 3000;
  config.evolution.emax = 0.25;
  config.evolution.seed = seed;
  config.max_executions = 2;
  config.coverage_target_percent = 95.0;
  const auto result = ef::core::train(train, {.config = config});
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "efserve: cannot write '%s'\n", path.c_str());
    return 1;
  }
  result.system.save(out);
  std::printf("wrote %zu rules (train coverage %.1f%%) to %s\n", result.system.size(),
              result.train_coverage_percent, path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);

  if (const auto demo_path = cli.get("train-demo")) {
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 12));
    return train_demo(*demo_path, seed);
  }

  const std::string container_path = cli.get_string("container", "");
  if (cli.positional().empty() && container_path.empty()) {
    std::fprintf(stderr,
                 "usage: efserve NAME=MODEL.efr [NAME=MODEL.efr ...] [--port 7777]\n"
                 "       efserve --container FLEET.efr2 [--port 7777]\n"
                 "       efserve --train-demo PATH.efr\n");
    return 2;
  }

  ef::serve::ModelStore store;
  if (!container_path.empty()) {
    try {
      store.attach_container(container_path);
      const auto info = store.container_info();
      std::printf("attached container %s (%zu series, %zu bytes)\n",
                  container_path.c_str(), info->models, info->bytes);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "efserve: %s\n", e.what());
      return 1;
    }
  }
  for (const std::string& spec : cli.positional()) {
    const std::size_t eq = spec.find('=');
    const std::string name = eq == std::string::npos ? "default" : spec.substr(0, eq);
    const std::string path = eq == std::string::npos ? spec : spec.substr(eq + 1);
    try {
      store.add_file(name, path);
      const auto model = store.get(name);
      std::printf("loaded model '%s' from %s (%zu rules, window %zu)\n", name.c_str(),
                  path.c_str(), model->system().size(), model->window());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "efserve: %s\n", e.what());
      return 1;
    }
  }

  const auto poll_ms = cli.get_int("poll-ms", 500);
  if (poll_ms > 0) store.start_polling(std::chrono::milliseconds(poll_ms));

  // One ServeOptions literal configures the whole stack — service pipeline
  // and reactor transport alike (serve/options.hpp).
  ef::serve::ServeOptions options;
  const auto cache_capacity = cli.get_int("cache-capacity", 65536);
  options.enable_cache = cache_capacity > 0;
  if (options.enable_cache) {
    options.cache.capacity = static_cast<std::size_t>(cache_capacity);
  }
  options.cache.shards = static_cast<std::size_t>(cli.get_int("cache-shards", 8));
  options.cache.quantum = cli.get_double("quantum", 1e-9);
  const auto batch_delay_us = cli.get_int("batch-delay-us", 200);
  options.enable_batcher = batch_delay_us > 0;
  options.batcher.max_delay = std::chrono::microseconds(batch_delay_us);
  options.batcher.max_batch = static_cast<std::size_t>(cli.get_int("batch-max", 64));
  options.slow_request_us = cli.get_double("slow-request-us", 50000.0);
  const auto quality_ledger = cli.get_int("quality-ledger", 1024);
  options.quality.enabled = quality_ledger > 0;
  options.quality.ledger_capacity =
      quality_ledger > 0 ? static_cast<std::size_t>(quality_ledger) : 0;
  options.quality.window = static_cast<std::size_t>(cli.get_int("quality-window", 256));
  options.quality.top_k = static_cast<std::size_t>(cli.get_int("quality-topk", 5));
  options.quality.drift.delta = cli.get_double("drift-delta", 0.05);
  options.quality.drift.lambda = cli.get_double("drift-lambda", 5.0);
  options.quality.drift.min_samples =
      static_cast<std::size_t>(cli.get_int("drift-min-n", 8));
  options.host = cli.get_string("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(cli.get_int("port", 7777));
  options.reactor_threads = static_cast<std::size_t>(cli.get_int("reactor-threads", 0));
  options.max_pipeline = static_cast<std::size_t>(cli.get_int("max-pipeline", 1024));
  options.drain_timeout_ms = static_cast<int>(cli.get_int("drain-timeout-ms", 5000));

  // Timeline tracing: an explicit --trace-sample wins over the environment
  // (applied at service construction via ServeOptions::trace_sample);
  // --trace-out with nothing configured arms full sampling so the dump is
  // never silently empty.
  if (cli.has("trace-sample")) {
    options.trace_sample = cli.get_double("trace-sample", 0.0);
  }
  g_trace_out = cli.get_string("trace-out", "");

  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  ef::util::ThreadPool pool(threads);
  ef::serve::ForecastService service(store, options, &pool);
  if (!g_trace_out.empty() && !ef::obs::Timeline::enabled()) {
    ef::obs::Timeline::set_sample_rate(1.0);
  }

  ef::serve::Reactor server(service);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "efserve: %s\n", e.what());
    return 1;
  }
  std::size_t model_count = store.size();
  if (const auto info = store.container_info()) model_count += info->models;
  std::printf("efserve listening on %s:%u (%zu model%s, %zu reactor%s; Ctrl-C to stop)\n",
              options.host.c_str(), static_cast<unsigned>(server.port()), model_count,
              model_count == 1 ? "" : "s", server.shard_count(),
              server.shard_count() == 1 ? "" : "s");
  std::fflush(stdout);

  // Windowed rates/quantiles for GET /metrics and the "metrics" verb; one
  // registry snapshot per second, nothing added to the request path.
  ef::obs::WindowedCollector::global().start();
  EVOFORECAST_EVENT("serve.start", {"port", server.port()}, {"models", store.size()});

  wait_for_stop_signal();

  EVOFORECAST_EVENT("serve.stop", {"connections", server.connections_served()});
  std::printf("\nshutting down: draining in-flight requests...\n");
  server.stop();        // graceful drain: answer what was received, flush, close
  service.shutdown();   // then drain the batcher queue
  store.stop_polling();
  ef::obs::WindowedCollector::global().stop();
  std::printf("served %llu connections\n",
              static_cast<unsigned long long>(server.connections_served()));

  dump_timeline();
  ef::obs::emit_cli_report(cli);
  return 0;
}
