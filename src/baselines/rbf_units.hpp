// rbf_units.hpp — Gaussian unit bank shared by the RAN and MRAN baselines.
//
// f(x) = bias + Σ_k w_k · exp(−‖x − c_k‖² / σ_k²)
//
// Both networks grow this structure online; they differ only in the growth
// criterion and (for MRAN) pruning, so the unit storage, evaluation and the
// gradient (LMS) update live here.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "baselines/linalg.hpp"

namespace ef::baselines {

/// One Gaussian unit's response to input x.
[[nodiscard]] inline double gaussian_response(std::span<const double> center, double width,
                                              std::span<const double> x) {
  return std::exp(-squared_distance(center, x) / (width * width));
}

/// The growing unit bank.
struct RbfUnits {
  std::vector<std::vector<double>> centers;
  std::vector<double> widths;
  std::vector<double> weights;
  double bias = 0.0;

  [[nodiscard]] std::size_t size() const noexcept { return centers.size(); }

  /// Network output and (optionally) the per-unit responses for reuse by the
  /// caller's update step.
  [[nodiscard]] double evaluate(std::span<const double> x,
                                std::vector<double>* responses = nullptr) const {
    double y = bias;
    if (responses) responses->assign(size(), 0.0);
    for (std::size_t k = 0; k < size(); ++k) {
      const double r = gaussian_response(centers[k], widths[k], x);
      if (responses) (*responses)[k] = r;
      y += weights[k] * r;
    }
    return y;
  }

  /// Distance from x to the nearest unit centre; +inf when empty.
  [[nodiscard]] double nearest_center_distance(std::span<const double> x) const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& c : centers) {
      best = std::min(best, std::sqrt(squared_distance(c, x)));
    }
    return best;
  }

  /// Platt's LMS update of weights, bias and centres for one sample with
  /// error e = y − target and the responses from evaluate().
  void lms_update(std::span<const double> x, double error,
                  std::span<const double> responses, double learning_rate) {
    bias -= learning_rate * error;
    for (std::size_t k = 0; k < size(); ++k) {
      const double r = responses[k];
      weights[k] -= learning_rate * error * r;
      // Centre pull: ∂f/∂c = w·r·2(x−c)/σ²; descend on ½e².
      const double scale =
          2.0 * learning_rate * error * weights[k] * r / (widths[k] * widths[k]);
      for (std::size_t j = 0; j < x.size(); ++j) {
        centers[k][j] -= scale * (x[j] - centers[k][j]);
      }
    }
  }

  /// Allocate a new unit at x with the given width and output weight.
  void allocate(std::span<const double> x, double width, double weight) {
    centers.emplace_back(x.begin(), x.end());
    widths.push_back(width);
    weights.push_back(weight);
  }

  /// Remove unit k (order not preserved — swap-and-pop).
  void remove(std::size_t k) {
    centers[k] = std::move(centers.back());
    centers.pop_back();
    widths[k] = widths.back();
    widths.pop_back();
    weights[k] = weights.back();
    weights.pop_back();
  }
};

}  // namespace ef::baselines
