#!/usr/bin/env python3
"""Gate a bench_match_kernel run against the committed baseline (used by CI).

Usage: check_match_bench.py CURRENT_JSON [BASELINE_JSON]

BASELINE_JSON defaults to BENCH_match.json next to the repo root (one
directory above this script). The current run is typically --quick on a
noisy shared runner while the baseline is a full run on a quiet box, so
the throughput thresholds are deliberately generous — this is a smoke
gate against order-of-magnitude regressions and correctness bugs, not a
performance tracker.

Checks, in order of severity:
  1. match_sets_identical must be true (hard correctness failure).
  2. train.rule_systems_identical must be true when the current run has a
     train section (the batched fitness path must be bit-exact end to end).
  3. soa_prefilter speedup vs scalar must stay >= MIN_SPEEDUP (1.5x;
     the committed baseline demonstrates >= 3x).
  4. The AVX2-class kernels must not regress to the SSE2 one: avx2 and
     rule_major speedups >= MIN_AVX2_RATIO of soa_prefilter's. (On a
     runner without AVX2 the kernels legitimately alias the SSE2 path,
     so the floor is below 1.0; the committed baseline is separately held
     to avx2 and rule_major >= 1.5x soa_prefilter — the acceptance-level
     separation demonstrated on quiet hardware with real AVX2.)
  5. Each backend's windows/s must stay >= MIN_THROUGHPUT_RATIO (0.25)
     of the baseline's.
  6. train.train_speedup must carry a sane value: structure present,
     > MIN_TRAIN_SPEEDUP on the committed baseline, and within a loose
     sanity band (> 0.5x) on live CI runs.
Exits non-zero on the first category that fails, after printing all checks.
"""
import json
import os
import sys

MIN_SPEEDUP = 1.5
MIN_THROUGHPUT_RATIO = 0.25
MIN_AVX2_RATIO = 0.7          # live runs: AVX2-class must stay near SSE2 or above
MIN_AVX2_RATIO_BASELINE = 1.5  # committed baseline: AVX2 vs SSE2 acceptance floor
MIN_TRAIN_SPEEDUP_LIVE = 0.5  # live runs: loose sanity band (CI noise, quick scale)
MIN_TRAIN_SPEEDUP_BASELINE = 1.3  # committed baseline: the acceptance floor

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    suffix = f": {detail}" if detail and not ok else ""
    print(f"  [{status}] {name}{suffix}")
    if not ok:
        FAILURES.append(name)


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(__doc__)
        return 2
    current_path = sys.argv[1]
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) == 3
        else os.path.join(os.path.dirname(__file__), "..", "BENCH_match.json")
    )

    def load(path, role):
        try:
            with open(path) as f:
                return json.load(f)
        except OSError as err:
            print(f"check_match_bench: cannot read {role} {path}: {err}")
        except json.JSONDecodeError as err:
            print(f"check_match_bench: {role} {path} is not valid JSON "
                  f"(line {err.lineno}, col {err.colno}): {err.msg}")
        return None

    current = load(current_path, "current run")
    baseline = load(baseline_path, "baseline")
    if current is None or baseline is None:
        return 2
    if not isinstance(current, dict) or not isinstance(baseline, dict):
        print("check_match_bench: expected a JSON object at the top level")
        return 2

    print(f"check_match_bench: {current_path} vs {baseline_path}")

    check(
        "match sets identical",
        current.get("match_sets_identical") is True,
        "backends disagree with the scalar reference — correctness bug",
    )

    speedups = current.get("speedup", {})
    speedup = speedups.get("soa_prefilter", 0.0)
    check(
        f"soa_prefilter speedup {speedup:.2f}x >= {MIN_SPEEDUP}x",
        speedup >= MIN_SPEEDUP,
        f"baseline has {baseline.get('speedup', {}).get('soa_prefilter', 0.0):.2f}x",
    )

    for name in ("avx2", "rule_major"):
        s = speedups.get(name)
        if s is None:
            check(f"speedup.{name} present", False, "missing from current run")
            continue
        floor = speedup * MIN_AVX2_RATIO
        check(
            f"{name} speedup {s:.2f}x >= {MIN_AVX2_RATIO} x soa_prefilter "
            f"({floor:.2f}x)",
            s >= floor,
        )

    for name, base in baseline.get("backends", {}).items():
        cur = current.get("backends", {}).get(name)
        if cur is None:
            check(f"backend {name} present", False, "missing from current run")
            continue
        floor = base["windows_per_sec"] * MIN_THROUGHPUT_RATIO
        check(
            f"{name} {cur['windows_per_sec']:.3e} windows/s >= "
            f"{MIN_THROUGHPUT_RATIO} x baseline ({floor:.3e})",
            cur["windows_per_sec"] >= floor,
        )

    # The committed baseline ran on quiet hardware with real AVX2, so it is
    # held to the acceptance-level separation between the AVX2-class kernels
    # and the SSE2 prefilter; live runs only get the loose floor above.
    base_speedups = baseline.get("speedup", {})
    base_prefilter = base_speedups.get("soa_prefilter", 0.0)
    for name in ("avx2", "rule_major"):
        bsp = base_speedups.get(name, 0.0)
        floor = base_prefilter * MIN_AVX2_RATIO_BASELINE
        check(
            f"baseline {name} speedup {bsp:.2f}x >= {MIN_AVX2_RATIO_BASELINE} x "
            f"soa_prefilter ({floor:.2f}x)",
            bsp >= floor,
        )

    # Train-path section. The committed baseline must demonstrate the
    # acceptance-level speedup with bit-identical rule systems; a live
    # (quick, noisy-runner) current run is only held to structure + a loose
    # sanity band.
    base_train = baseline.get("train")
    check("baseline has train section", isinstance(base_train, dict))
    if isinstance(base_train, dict):
        check(
            "baseline train rule systems identical",
            base_train.get("rule_systems_identical") is True,
            "batched fitness path diverged from the per-rule path",
        )
        bs = base_train.get("train_speedup", 0.0)
        check(
            f"baseline train_speedup {bs:.2f}x >= {MIN_TRAIN_SPEEDUP_BASELINE}x",
            bs >= MIN_TRAIN_SPEEDUP_BASELINE,
        )

    cur_train = current.get("train")
    if cur_train is None:
        # A run invoked with --no-train-path has nothing to check here;
        # only flag it when the baseline says the section should exist.
        print("  [--] current run has no train section (--no-train-path)")
    elif not isinstance(cur_train, dict):
        check("train section well-formed", False, "not an object")
    else:
        check(
            "train rule systems identical",
            cur_train.get("rule_systems_identical") is True,
            "batched fitness path diverged from the per-rule path",
        )
        for key in ("seconds_per_rule", "seconds_rule_major", "train_speedup"):
            check(f"train.{key} present", isinstance(cur_train.get(key), (int, float)))
        ts = cur_train.get("train_speedup", 0.0)
        check(
            f"train_speedup {ts:.2f}x >= {MIN_TRAIN_SPEEDUP_LIVE}x (sanity band)",
            isinstance(ts, (int, float)) and ts >= MIN_TRAIN_SPEEDUP_LIVE,
            f"baseline has {base_train.get('train_speedup', 0.0) if isinstance(base_train, dict) else 0.0:.2f}x",
        )

    if FAILURES:
        print(f"check_match_bench: {len(FAILURES)} check(s) failed")
        return 1
    print("check_match_bench: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
