// running_stats.hpp — single-pass mean/variance/extrema accumulation.
//
// Welford's online algorithm: numerically stable for long telemetry streams
// (75k-generation fitness traces) where naive sum-of-squares would cancel.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace ef::util {

/// Online accumulator for count / mean / variance / min / max.
class RunningStats {
 public:
  /// Fold one observation into the accumulator.
  constexpr void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merge another accumulator (parallel reduction; Chan et al. formula).
  constexpr void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] constexpr std::size_t count() const noexcept { return count_; }
  [[nodiscard]] constexpr double mean() const noexcept { return count_ ? mean_ : 0.0; }

  /// Population variance (divides by n). 0 for fewer than 2 samples.
  [[nodiscard]] constexpr double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  /// Sample variance (divides by n-1). 0 for fewer than 2 samples.
  [[nodiscard]] constexpr double sample_variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// Minimum observed value; +inf when empty.
  [[nodiscard]] constexpr double min() const noexcept { return min_; }
  /// Maximum observed value; -inf when empty.
  [[nodiscard]] constexpr double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ef::util
