// compaction.hpp — post-training rule-set reduction.
//
// The multi-execution union (§3.4) accumulates hundreds of rules, many of
// them redundant: exact duplicates across executions, and *subsumed* rules —
// a rule whose condition box lies inside another's while both predict the
// same thing. Classic classifier-system compaction removes them without
// changing (or barely changing) the system's input→output behaviour, which
// matters for both query speed and interpretability.
//
// Operations, in the order compact() applies them:
//   1. drop exact duplicates (same genes),
//   2. drop subsumed rules: condition ⊆ condition' and the two rules'
//      forecasts agree within `prediction_tolerance` on the subsumed rule's
//      own matched region (approximated by comparing hyperplanes at the box
//      corners' midpoint and the subsumer's mean prediction),
//   3. optionally drop rules that never fire on a reference dataset.
#pragma once

#include <cstddef>
#include <vector>

#include "core/dataset.hpp"
#include "core/rule.hpp"
#include "core/rule_system.hpp"

namespace ef::core {

struct CompactionOptions {
  /// Max |p_A − p_B| (mean-prediction difference) for a subsumed rule to be
  /// considered redundant. Units of the target variable.
  double prediction_tolerance = 0.05;
  /// Also drop rules with zero matches on the reference dataset (requires
  /// passing one to compact()).
  bool drop_unfired = true;
};

struct CompactionReport {
  std::size_t input_rules = 0;
  std::size_t duplicates_removed = 0;
  std::size_t subsumed_removed = 0;
  std::size_t unfired_removed = 0;
  [[nodiscard]] std::size_t output_rules() const {
    return input_rules - duplicates_removed - subsumed_removed - unfired_removed;
  }
};

/// True when every gene of `inner` accepts a subset of `outer`'s values.
[[nodiscard]] bool condition_subsumed(const Rule& inner, const Rule& outer);

/// Compact a rule system. When `reference` is non-null, the unfired-rule
/// pass runs against it; coverage on `reference` is never reduced (a rule is
/// only dropped if every window it fires on is also fired on by a surviving
/// rule — guaranteed by the subsumption test plus the unfired test).
[[nodiscard]] RuleSystem compact(const RuleSystem& system, CompactionReport& report,
                                 const CompactionOptions& options = {},
                                 const WindowDataset* reference = nullptr);

}  // namespace ef::core
