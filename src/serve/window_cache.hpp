// serve/window_cache.hpp — sharded LRU cache of prediction results keyed by
// quantized window.
//
// Production traffic repeats: the same sensor window arrives from many
// clients, and a rule-system forecast is a pure function of (model version,
// window, horizon, aggregation). Keys quantize each window value to a grid
// (`quantum`) so that float jitter below the grid maps to the same entry,
// then carry the full quantized vector — a hash collision can therefore
// never return a wrong value, only a slower exact compare. The table is
// sharded by hash with one mutex and one LRU list per shard, so concurrent
// request threads rarely contend. Abstentions are cached like values (they
// are just as deterministic and just as expensive to recompute).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/aggregation.hpp"

namespace ef::serve {

struct CacheConfig {
  std::size_t capacity = 65536;  ///< total entries across all shards
  std::size_t shards = 8;
  double quantum = 1e-9;  ///< window-value quantization grid
};

class WindowCache {
 public:
  struct Key {
    std::uint64_t model_tag = 0;  ///< LoadedModel::tag() of the exact snapshot
    std::uint32_t horizon = 1;
    std::uint8_t agg = 0;  ///< static_cast of core::Aggregation
    std::vector<std::int64_t> qwindow;

    [[nodiscard]] bool operator==(const Key& other) const = default;
  };

  struct Value {
    bool abstain = false;
    double value = 0.0;
    std::uint32_t votes = 0;
    /// Interval half-width the forecast shipped with; < 0 = none. Cached so
    /// a hit returns the same "interval":[p−e,p+e] as the original compute.
    double bound = -1.0;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
  };

  explicit WindowCache(CacheConfig config = {});

  /// Quantize a raw window into a cache key for the given model snapshot.
  [[nodiscard]] Key make_key(std::uint64_t model_tag, std::uint32_t horizon,
                             core::Aggregation agg, std::span<const double> window) const;

  /// Lookup; a hit refreshes the entry's LRU position.
  [[nodiscard]] std::optional<Value> get(const Key& key);

  /// Insert or overwrite; evicts the shard's least-recently-used entry when
  /// the shard is at capacity.
  void put(Key key, Value value);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return config_.capacity; }
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  void clear();

 private:
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& key) const noexcept;
  };

  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<Key, Value>> lru;
    std::unordered_map<Key, std::list<std::pair<Key, Value>>::iterator, KeyHash> map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shard_of(const Key& key);

  CacheConfig config_;
  std::size_t per_shard_capacity_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace ef::serve
