// Tests for baselines/arma.hpp: parameter recovery on known ARMA processes,
// forecasting quality on AR-predictable series, validation.
#include "baselines/arma.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/dataset.hpp"
#include "series/metrics.hpp"
#include "series/synthetic.hpp"
#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

namespace bl = ef::baselines;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

TEST(ArmaConfig, Validation) {
  bl::ArmaConfig bad;
  bad.p = 0;
  bad.q = 0;
  EXPECT_THROW(bl::Arma{bad}, std::invalid_argument);
  bad = {};
  bad.ridge = -1.0;
  EXPECT_THROW(bl::Arma{bad}, std::invalid_argument);
}

TEST(Arma, PredictBeforeFitThrows) {
  bl::Arma model;
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0, 2.0}), std::logic_error);
}

TEST(Arma, SeriesTooShortThrows) {
  const TimeSeries tiny(std::vector<double>(8, 1.0));
  const WindowDataset data(tiny, 2, 1);
  bl::Arma model;
  EXPECT_THROW(model.fit(data), std::invalid_argument);
}

TEST(Arma, RecoversAr2Coefficients) {
  // x_t = 1.2 x_{t−1} − 0.5 x_{t−2} + ε.
  ef::series::ArParams params;
  params.phi = {1.2, -0.5};
  params.noise_sd = 0.5;
  params.seed = 3;
  const auto s = ef::series::generate_ar(8000, params);
  const WindowDataset data(s, 8, 1);

  bl::ArmaConfig cfg;
  cfg.p = 2;
  cfg.q = 1;
  bl::Arma model(cfg);
  model.fit(data);
  ASSERT_EQ(model.ar_coeffs().size(), 2u);
  EXPECT_NEAR(model.ar_coeffs()[0], 1.2, 0.1);
  EXPECT_NEAR(model.ar_coeffs()[1], -0.5, 0.1);
  // θ for a pure-AR process should be near zero.
  EXPECT_NEAR(model.ma_coeffs()[0], 0.0, 0.15);
}

TEST(Arma, OneStepForecastBeatsMeanOnAr2) {
  ef::series::ArParams params;
  params.phi = {1.2, -0.5};
  params.noise_sd = 0.3;
  params.seed = 4;
  const auto full = ef::series::generate_ar(4000, params);
  const auto train_series = full.slice(0, 3000);
  const auto test_series = full.slice(3000, 4000);
  const WindowDataset train(train_series, 8, 1);
  const WindowDataset test(test_series, 8, 1);

  bl::Arma model;
  model.fit(train);
  std::vector<double> actual;
  for (std::size_t i = 0; i < test.count(); ++i) actual.push_back(test.target(i));
  const double score = ef::series::nmse(actual, model.predict_all(test));
  // AR(2) with these params is strongly predictable one step ahead.
  EXPECT_LT(score, 0.25);
}

TEST(Arma, MultiStepForecastIteratesRecursion) {
  // On a noiseless AR(1) x_t = 0.9 x_{t−1}, the τ-step forecast from level L
  // is 0.9^τ · L.
  std::vector<double> v;
  double x = 10.0;
  for (int i = 0; i < 400; ++i) {
    v.push_back(x);
    x *= 0.9;
  }
  // Re-excite so the series isn't vanishing (append several decay segments).
  std::vector<double> series;
  for (int seg = 0; seg < 5; ++seg) {
    for (const double value : v) series.push_back(value * (seg % 2 == 0 ? 1.0 : -1.0));
  }
  const TimeSeries s(std::move(series));
  const WindowDataset data(s, 6, 5);  // τ = 5

  bl::ArmaConfig cfg;
  cfg.p = 1;
  cfg.q = 1;
  bl::Arma model(cfg);
  model.fit(data);
  EXPECT_NEAR(model.ar_coeffs()[0], 0.9, 0.05);

  const std::vector<double> window{5.0, 4.5, 4.05, 3.645, 3.2805, 2.95245};
  // True continuation: 2.95245 · 0.9⁵ ≈ 1.7433.
  EXPECT_NEAR(model.predict(window), 2.95245 * std::pow(0.9, 5), 0.15);
}

TEST(Arma, MaPartImprovesOnArmaProcess) {
  // Generate an ARMA(1,1) process explicitly; ARMA(1,1) should beat AR(1)
  // one-step (both estimated by the same pipeline).
  ef::util::Rng rng(9);
  std::vector<double> v;
  double prev_x = 0.0;
  double prev_e = 0.0;
  for (int i = 0; i < 6000; ++i) {
    const double e = rng.normal(0.0, 1.0);
    const double x = 0.6 * prev_x + 0.7 * prev_e + e;
    v.push_back(x);
    prev_x = x;
    prev_e = e;
  }
  const TimeSeries s(std::move(v));
  const auto train_series = s.slice(0, 5000);
  const auto test_series = s.slice(5000, 6000);
  const WindowDataset train(train_series, 10, 1);
  const WindowDataset test(test_series, 10, 1);

  bl::ArmaConfig arma_cfg;
  arma_cfg.p = 1;
  arma_cfg.q = 1;
  bl::Arma arma(arma_cfg);
  arma.fit(train);

  bl::ArmaConfig ar_cfg;
  ar_cfg.p = 1;
  ar_cfg.q = 0;  // pure AR(1) through the same estimator
  EXPECT_NO_THROW(ar_cfg.validate());
  bl::Arma ar(ar_cfg);
  ar.fit(train);

  std::vector<double> actual;
  for (std::size_t i = 0; i < test.count(); ++i) actual.push_back(test.target(i));
  const double arma_nmse = ef::series::nmse(actual, arma.predict_all(test));
  const double ar_nmse = ef::series::nmse(actual, ar.predict_all(test));
  EXPECT_LT(arma_nmse, ar_nmse);
  EXPECT_NEAR(arma.ma_coeffs()[0], 0.7, 0.2);
}

}  // namespace
