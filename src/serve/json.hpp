// serve/json.hpp — the protocol's minimal JSON value + parser, public.
//
// Originally private to serve/protocol.cpp; promoted so tools (efstat) and
// tests can parse the server's JSON-lines responses with the exact grammar
// the server speaks. This is deliberately NOT a general JSON library:
//
//   * nesting bounded (default depth 8) — rejected loudly, never a stack
//     overflow on adversarial input
//   * numbers must be finite doubles — "1e999" and friends are errors, not
//     silently-infinite values
//   * duplicate object keys are errors — the last-one-wins behaviour most
//     parsers default to silently discards request fields
//   * \u escapes decode to UTF-8 (surrogate pairs included; lone surrogates
//     are errors). The server's own serialisers emit \u00XX for control
//     characters, so the parser must accept what the stack emits — the
//     round-trip fuzz target (fuzz/harness/json_roundtrip.cpp) enforces it.
//
// parse() returns nullopt and fills `error` with a byte position instead of
// throwing; malformed wire input is an expected case, not an exception.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ef::serve::json {

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value, std::less<>>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data;

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(data); }
  [[nodiscard]] const bool* as_bool() const { return std::get_if<bool>(&data); }
  [[nodiscard]] const double* as_number() const { return std::get_if<double>(&data); }
  [[nodiscard]] const std::string* as_string() const { return std::get_if<std::string>(&data); }
  [[nodiscard]] const Array* as_array() const { return std::get_if<Array>(&data); }
  [[nodiscard]] const Object* as_object() const { return std::get_if<Object>(&data); }
};

struct ParseOptions {
  std::size_t max_depth = 8;  ///< protocol requests are one object of scalars + one flat array
};

/// Parse a complete JSON document. On failure returns nullopt and sets
/// `error` to a human-readable reason including the byte offset.
[[nodiscard]] std::optional<Value> parse(std::string_view text, std::string& error,
                                         const ParseOptions& options = {});

/// Serialise a Value to one line of JSON that parse() accepts back
/// (dump/parse/dump is a fixed point — the round-trip fuzz invariant).
/// Numbers use shortest-round-trip %.17g; object keys stay sorted (Object is
/// an ordered map), so equal Values dump to byte-identical text.
[[nodiscard]] std::string dump(const Value& value);

}  // namespace ef::serve::json
