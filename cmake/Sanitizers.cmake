# Sanitizer wiring for the correctness harness (docs/TESTING.md).
#
# EVOFORECAST_SANITIZE selects compiler sanitizers for the whole build:
#
#   -DEVOFORECAST_SANITIZE=address,undefined   # ASan + UBSan (the CI pairing)
#   -DEVOFORECAST_SANITIZE=thread              # TSan (exclusive with ASan)
#
# Flags are applied globally (add_compile_options / add_link_options) so every
# library, test, bench and fuzz harness is instrumented — a partially
# sanitized binary silently misses errors at the instrumentation boundary.
# -fno-sanitize-recover=all turns every finding into a hard failure, so a CI
# job cannot go green while printing sanitizer reports. The option composes
# with the existing EVOFORECAST_* options (OBS on/off, WERROR, FUZZ).

set(EVOFORECAST_SANITIZE "" CACHE STRING
    "Sanitizers to build with: address, undefined, thread. Combine address and undefined with ',' or ';'; thread is exclusive.")

set(EVOFORECAST_SANITIZE_ACTIVE "")

if(EVOFORECAST_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR
      "EVOFORECAST_SANITIZE requires GCC or Clang (got ${CMAKE_CXX_COMPILER_ID})")
  endif()

  string(REPLACE "," ";" _ef_san_request "${EVOFORECAST_SANITIZE}")
  set(_ef_san_list "")
  foreach(_ef_san IN LISTS _ef_san_request)
    string(STRIP "${_ef_san}" _ef_san)
    string(TOLOWER "${_ef_san}" _ef_san)
    if(NOT _ef_san MATCHES "^(address|undefined|thread)$")
      message(FATAL_ERROR
        "EVOFORECAST_SANITIZE: unknown sanitizer '${_ef_san}' "
        "(expected address, undefined, or thread)")
    endif()
    list(APPEND _ef_san_list "${_ef_san}")
  endforeach()
  list(REMOVE_DUPLICATES _ef_san_list)

  if("thread" IN_LIST _ef_san_list AND "address" IN_LIST _ef_san_list)
    message(FATAL_ERROR
      "EVOFORECAST_SANITIZE: thread and address sanitizers cannot be combined; "
      "run them as separate builds (CI runs one job per pairing)")
  endif()

  list(JOIN _ef_san_list "," _ef_san_csv)
  set(EVOFORECAST_SANITIZE_ACTIVE "${_ef_san_csv}")
  message(STATUS "evoforecast: building with -fsanitize=${_ef_san_csv}")

  add_compile_options(
    -fsanitize=${_ef_san_csv}
    -fno-sanitize-recover=all
    -fno-omit-frame-pointer
    -g)
  add_link_options(-fsanitize=${_ef_san_csv})

  # UBSan's runtime alignment/vptr checks want the baseline -O levels kept
  # honest; nothing else to add. ASan/TSan need no extra flags beyond the
  # group name. Known-needed suppressions live in scripts/tsan.supp and are
  # applied via TSAN_OPTIONS at run time (none are baked in here so that a
  # local run reports everything by default).

  # Tests can scale themselves (thread counts, iteration budgets) under the
  # ~5-20x sanitizer slowdown without weakening the uninstrumented run.
  add_compile_definitions(EVOFORECAST_SANITIZED=1)
  if("thread" IN_LIST _ef_san_list)
    add_compile_definitions(EVOFORECAST_SANITIZE_THREAD=1)
  endif()
endif()
