#include "core/regression.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/macros.hpp"

namespace ef::core {

double LinearFit::predict(std::span<const double> window) const noexcept {
  // coeffs = (a0 … a_{D-1}, a_D); evaluates even if window is shorter/longer
  // than D-1 entries would require — callers guarantee matching sizes, and
  // the loop bound below keeps the access in range either way.
  const std::size_t d = coeffs.empty() ? 0 : coeffs.size() - 1;
  const std::size_t n = window.size() < d ? window.size() : d;
  double acc = coeffs.empty() ? 0.0 : coeffs.back();
  for (std::size_t i = 0; i < n; ++i) acc += coeffs[i] * window[i];
  return acc;
}

bool solve_spd_inplace(std::vector<double>& a, std::vector<double>& b, std::size_t n) {
  if (a.size() != n * n || b.size() != n) {
    throw std::invalid_argument("solve_spd_inplace: dimension mismatch");
  }
  // In-place Cholesky: A = L·Lᵀ, stored in the lower triangle of `a`.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) v -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = v / ljj;
    }
  }
  // Forward solve L·y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= a[i * n + k] * b[k];
    b[i] = v / a[i * n + i];
  }
  // Back solve Lᵀ·w = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= a[k * n + ii] * b[k];
    b[ii] = v / a[ii * n + ii];
  }
  return true;
}

namespace {

/// Shared core: rows are provided through an accessor returning
/// (pattern span, target) so both public overloads use the same path, and
/// the XᵀX / Xᵀy accumulation is supplied by the caller so the
/// WindowDataset overload can scan lag-major columns instead of rows.
/// Any accumulate implementation must add terms into each accumulator in
/// ascending row order — that keeps every layout bit-identical.
template <typename RowAt, typename Accumulate>
LinearFit fit_impl(std::size_t row_count, std::size_t dim, RowAt&& row_at,
                   Accumulate&& accumulate, const RegressionOptions& options) {
  if (row_count == 0) throw std::invalid_argument("fit_hyperplane: no rows");
  EVOFORECAST_TRACE("core.regression");
  EVOFORECAST_COUNT("regression.fits", 1);
  EVOFORECAST_COUNT("regression.rows", row_count);

  LinearFit fit;
  const std::size_t n = dim + 1;  // + intercept

  const auto constant_fit = [&]() {
    double mean = 0.0;
    for (std::size_t r = 0; r < row_count; ++r) mean += row_at(r).second;
    mean /= static_cast<double>(row_count);
    fit.coeffs.assign(n, 0.0);
    fit.coeffs.back() = mean;
    fit.degenerate = true;
  };

  const bool underdetermined = row_count < dim + 2;
  if (underdetermined && options.constant_fallback_when_underdetermined) {
    constant_fit();
  } else {
    // Normal equations: (XᵀX) w = Xᵀy with X augmented by a ones column.
    std::vector<double> xtx(n * n, 0.0);
    std::vector<double> xty(n, 0.0);
    accumulate(xtx, xty, n);
    // Mirror the upper triangle (we accumulated j >= i only).
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) xtx[i * n + j] = xtx[j * n + i];
    }
    // Relative ridge: λ · tr(XᵀX)/n on the diagonal.
    if (options.ridge > 0.0) {
      double trace = 0.0;
      for (std::size_t i = 0; i < n; ++i) trace += xtx[i * n + i];
      const double bump = options.ridge * trace / static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) xtx[i * n + i] += bump;
    }

    std::vector<double> w = xty;
    if (solve_spd_inplace(xtx, w, n)) {
      fit.coeffs = std::move(w);
    } else {
      constant_fit();  // singular even with ridge: constant model
    }
  }

  // Residual statistics on the fitted model.
  double max_resid = 0.0;
  double mean_pred = 0.0;
  for (std::size_t r = 0; r < row_count; ++r) {
    const auto [pattern, y] = row_at(r);
    const double pred = fit.predict(pattern);
    max_resid = std::max(max_resid, std::abs(y - pred));
    mean_pred += pred;
  }
  fit.max_abs_residual = max_resid;
  fit.mean_prediction = mean_pred / static_cast<double>(row_count);
  return fit;
}

/// Row-outer accumulation: the scalar reference used by the generic overload.
template <typename RowAt>
auto make_rowwise_accumulate(std::size_t row_count, std::size_t dim, RowAt& row_at) {
  return [row_count, dim, &row_at](std::vector<double>& xtx, std::vector<double>& xty,
                                   std::size_t n) {
    for (std::size_t r = 0; r < row_count; ++r) {
      const auto [pattern, y] = row_at(r);
      for (std::size_t i = 0; i < dim; ++i) {
        const double xi = pattern[i];
        for (std::size_t j = i; j < dim; ++j) xtx[i * n + j] += xi * pattern[j];
        xtx[i * n + dim] += xi;  // × ones column
        xty[i] += xi * y;
      }
      xtx[dim * n + dim] += 1.0;
      xty[dim] += y;
    }
  };
}

}  // namespace

LinearFit fit_hyperplane(const WindowDataset& data, std::span<const std::size_t> rows,
                         const RegressionOptions& options) {
  const auto row_at = [&](std::size_t r) {
    return std::pair<std::span<const double>, double>{data.pattern(rows[r]),
                                                      data.target(rows[r])};
  };
  // Lag-major accumulation: loop nest interchanged so each (i, j) entry scans
  // two contiguous columns with a gathered row index. Terms still enter every
  // accumulator in ascending row order — the per-entry operation sequence is
  // exactly the row-outer reference's, so the results are bit-identical.
  const LagMajorView cols = data.lag_major();
  const std::span<const double> targets = data.targets();
  const std::size_t dim = data.window();
  const auto accumulate = [&](std::vector<double>& xtx, std::vector<double>& xty, std::size_t n) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double* ci = cols.col(i);
      for (std::size_t j = i; j < dim; ++j) {
        const double* cj = cols.col(j);
        double acc = 0.0;
        for (const std::size_t w : rows) acc += ci[w] * cj[w];
        xtx[i * n + j] = acc;
      }
      double ones = 0.0;
      double xy = 0.0;
      for (const std::size_t w : rows) {
        ones += ci[w];
        xy += ci[w] * targets[w];
      }
      xtx[i * n + dim] = ones;  // × ones column
      xty[i] = xy;
    }
    // Σ 1.0 over the matched rows — exact for any realistic row count.
    xtx[dim * n + dim] = static_cast<double>(rows.size());
    double ty = 0.0;
    for (const std::size_t w : rows) ty += targets[w];
    xty[dim] = ty;
  };
  return fit_impl(rows.size(), dim, row_at, accumulate, options);
}

LinearFit fit_hyperplane(const std::vector<std::vector<double>>& x, std::span<const double> y,
                         const RegressionOptions& options) {
  if (x.size() != y.size()) throw std::invalid_argument("fit_hyperplane: |x| != |y|");
  const std::size_t dim = x.empty() ? 0 : x.front().size();
  for (const auto& row : x) {
    if (row.size() != dim) throw std::invalid_argument("fit_hyperplane: ragged rows");
  }
  const auto row_at = [&](std::size_t r) {
    return std::pair<std::span<const double>, double>{x[r], y[r]};
  };
  return fit_impl(x.size(), dim, row_at, make_rowwise_accumulate(x.size(), dim, row_at), options);
}

}  // namespace ef::core
