// obs/build_info.hpp — provenance stamp for reports, baselines and the
// Prometheus exposition.
//
// A benchmark number without its build context is noise: the BENCH_*.json
// trajectory only means something if each point records which commit,
// compiler and build type produced it, and which EVOFORECAST_* knobs were
// set in the environment. build_info() captures all of that once per
// process; the JSON form is embedded in every --metrics-json dump and the
// label form becomes the `build_info` gauge of the /metrics exposition.
//
// The git commit and build type are baked in at CMake configure time
// (EVOFORECAST_GIT_COMMIT / EVOFORECAST_BUILD_TYPE compile definitions), so
// they go stale only until the next reconfigure; the environment is read at
// first call.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace ef::obs {

struct BuildInfo {
  std::string git_commit;  ///< short hash at configure time; "unknown" outside git
  std::string compiler;    ///< compiler id + version the library was built with
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  bool obs_enabled = true; ///< EVOFORECAST_OBS at build time
  /// EVOFORECAST_* environment variables at first call, sorted by name.
  std::vector<std::pair<std::string, std::string>> env;
};

/// Process-wide build metadata (captured once, immutable afterwards).
[[nodiscard]] const BuildInfo& build_info();

/// The same data as one JSON object (no trailing newline), e.g.
/// {"git_commit":"abc","compiler":"gcc 12.2.0","build_type":"Release",
///  "obs_enabled":true,"env":{"EVOFORECAST_MATCH_BACKEND":"soa"}}
[[nodiscard]] std::string build_info_json();

}  // namespace ef::obs
