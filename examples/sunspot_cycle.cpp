// sunspot_cycle — interpretable local rules on the solar-cycle series.
//
// Beyond raw accuracy, a Michigan rule population is *inspectable*: each
// individual is one IF-intervals-THEN-predict statement. This example trains
// on the synthetic monthly sunspot record, then shows what the population
// learned: the most-used rules, how specific they are, and how coverage
// distributes across the activity range (rules specialising on minima vs
// maxima — the "local behaviours" of the paper's title).
//
// Build & run:  ./build/examples/sunspot_cycle
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/introspection.hpp"
#include "core/rule_system.hpp"
#include "series/metrics.hpp"
#include "series/sunspot.hpp"

int main() {
  const std::size_t window = 24;
  const std::size_t horizon = 12;  // one year ahead

  const auto experiment = ef::series::make_paper_sunspots();
  const ef::core::WindowDataset train(experiment.train, window, horizon);
  const ef::core::WindowDataset validation(experiment.validation, window, horizon);

  ef::core::RuleSystemConfig config;
  config.evolution.population_size = 100;
  config.evolution.generations = 15000;
  config.evolution.emax = 0.26;
  config.evolution.seed = 11;
  config.coverage_target_percent = 96.0;
  config.max_executions = 6;

  std::printf("training on %zu windows (train 1749-1919, horizon %zu months)...\n",
              train.count(), horizon);
  const auto result = ef::core::train(train, {.config = config});

  const auto forecast = result.system.forecast_dataset(validation);
  std::vector<double> actual;
  for (std::size_t i = 0; i < validation.count(); ++i) actual.push_back(validation.target(i));
  const auto report = ef::series::evaluate_partial(actual, forecast);
  std::printf("validation (1929-1977): coverage %.1f%%, NMSE %.4f\n\n",
              report.coverage_percent, report.nmse);

  // --- interpretability: which rules carry the system? ----------------------
  struct RuleUse {
    std::size_t index;
    std::size_t votes = 0;
  };
  std::vector<RuleUse> usage(result.system.size());
  for (std::size_t r = 0; r < usage.size(); ++r) usage[r].index = r;
  for (std::size_t i = 0; i < validation.count(); ++i) {
    const auto w = validation.pattern(i);
    for (std::size_t r = 0; r < result.system.size(); ++r) {
      if (result.system.rules()[r].matches(w)) ++usage[r].votes;
    }
  }
  std::sort(usage.begin(), usage.end(),
            [](const RuleUse& a, const RuleUse& b) { return a.votes > b.votes; });

  std::printf("top 5 most-used rules on the validation range:\n");
  std::printf("%5s %7s %6s %11s %10s %9s\n", "rule", "votes", "spec", "prediction",
              "max-err", "N_train");
  for (std::size_t k = 0; k < usage.size() && k < 5; ++k) {
    const auto& rule = result.system.rules()[usage[k].index];
    const auto& part = *rule.predicting();
    std::printf("%5zu %7zu %4zu/%zu %11.3f %10.3f %9zu\n", usage[k].index, usage[k].votes,
                rule.specificity(), window, part.prediction(), part.error(), part.matches);
  }

  // --- do rules specialise by activity regime? -------------------------------
  // Bucket validation windows by their actual target (low/mid/high activity)
  // and count how many *distinct* rules serve each bucket.
  const double lo_cut = 0.15;
  const double hi_cut = 0.45;  // normalised units
  std::vector<std::size_t> low_rules;
  std::vector<std::size_t> high_rules;
  for (std::size_t i = 0; i < validation.count(); ++i) {
    const double target = validation.target(i);
    const auto w = validation.pattern(i);
    for (std::size_t r = 0; r < result.system.size(); ++r) {
      if (!result.system.rules()[r].matches(w)) continue;
      if (target < lo_cut) low_rules.push_back(r);
      if (target > hi_cut) high_rules.push_back(r);
    }
  }
  const auto distinct = [](std::vector<std::size_t>& v) {
    std::sort(v.begin(), v.end());
    return static_cast<std::size_t>(std::unique(v.begin(), v.end()) - v.begin());
  };
  const std::size_t n_low = distinct(low_rules);
  const std::size_t n_high = distinct(high_rules);
  std::printf("\nregime specialisation: %zu distinct rules fire at solar minima "
              "(target < %.2f),\n%zu distinct rules fire at maxima (target > %.2f); "
              "overlap is what the paper\ncalls rules for 'standard behaviours'.\n",
              n_low, lo_cut, n_high, hi_cut);

  // --- which lags does the population actually use? --------------------------
  const auto importance =
      ef::core::gene_importance(result.system, 0.0, 1.0);
  std::printf("\nlag importance (fitness-weighted gene selectivity, lag 1 = most "
              "recent month):\n  ");
  for (std::size_t j = importance.size(); j-- > 0;) {
    // Gene j corresponds to lag window-j months before the forecast origin.
    std::printf("%c", importance[j] > 0.5  ? '#'
                      : importance[j] > 0.25 ? '+'
                      : importance[j] > 0.05 ? '.'
                                             : ' ');
  }
  std::printf("   ('#' > 0.5, '+' > 0.25, '.' > 0.05)\n");

  std::printf("\nmost specific high-activity rule (full §3.1 encoding):\n");
  const ef::core::Rule* best = nullptr;
  for (const auto& rule : result.system.rules()) {
    if (rule.predicting()->prediction() > hi_cut &&
        (!best || rule.specificity() > best->specificity())) {
      best = &rule;
    }
  }
  if (best) std::printf("  %s\n", best->encode().c_str());
  return 0;
}
