#!/usr/bin/env python3
"""Validate Chrome trace-event JSON exported by the ef::obs timeline.

Usage: check_trace_json.py [--min-span-names N] [--require-slow] [FILE]
       (reads stdin when FILE is omitted)

Structural checks on a --trace-out capture or the "trace" verb's embedded
document (what Perfetto / chrome://tracing would load):
  * top level is an object with a "traceEvents" array
  * every event has a string "name", a known phase ("X" complete or
    "i" instant), numeric "ts" >= 0, and numeric "pid"/"tid"
  * complete events carry numeric "dur" >= 0 and args with integer
    trace_id / span_id / parent_id
  * timestamps are monotone non-decreasing across the traceEvents array
    (the exporter sorts)
  * span ids are unique; every span's parent_id is 0 or names another
    span of the same trace
  * with --min-span-names N: at least one trace contains >= N distinct
    span names (e.g. 4 proves the queue/batch/match/respond pipeline was
    captured end to end)
  * with --require-slow: at least one slow-request exemplar is present
    (a serve.slow_request instant marker or a span with args.slow_us)

Importable: validate(doc, min_span_names=0, require_slow=False) takes the
parsed JSON and returns a list of problem strings (empty = ok). The CLI
prints each problem and exits 1 on any, 2 on usage/IO errors — always a
readable message, never a traceback.
"""
import json
import sys

KNOWN_PHASES = ("X", "i", "M")


def validate(doc, min_span_names=0, require_slow=False):
    problems = []
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array \"traceEvents\""]

    span_ids = set()
    spans_by_trace = {}   # trace_id -> set of span ids
    names_by_trace = {}   # trace_id -> set of span names
    parents = []          # (index, trace_id, parent_id)
    slow_seen = False
    prev_ts = None
    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing or empty name")
            name = ""
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            problems.append(f"{where} ({name}): unknown phase {phase!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where} ({name}): bad ts {ts!r}")
            continue
        if prev_ts is not None and ts < prev_ts:
            problems.append(
                f"{where} ({name}): ts {ts} < previous event's {prev_ts} "
                "(not monotone)")
        prev_ts = ts
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), (int, float)):
                problems.append(f"{where} ({name}): missing numeric {key}")
        args = event.get("args")
        if not isinstance(args, dict):
            problems.append(f"{where} ({name}): missing args object")
            args = {}
        if name == "serve.slow_request" or args.get("slow_us"):
            slow_seen = True
        if phase != "X":
            continue

        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"{where} ({name}): bad dur {dur!r}")
        ids = {}
        for key in ("trace_id", "span_id", "parent_id"):
            value = args.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"{where} ({name}): args.{key} is {value!r}, "
                                "expected a non-negative integer")
                value = None
            ids[key] = value
        if ids["span_id"] is not None:
            if ids["span_id"] in span_ids:
                problems.append(
                    f"{where} ({name}): duplicate span_id {ids['span_id']}")
            span_ids.add(ids["span_id"])
        if ids["trace_id"] is not None:
            spans_by_trace.setdefault(ids["trace_id"], set())
            if ids["span_id"] is not None:
                spans_by_trace[ids["trace_id"]].add(ids["span_id"])
            names_by_trace.setdefault(ids["trace_id"], set()).add(name)
            if ids["parent_id"] is not None:
                parents.append((i, ids["trace_id"], ids["parent_id"]))

    for i, trace_id, parent_id in parents:
        if parent_id != 0 and parent_id not in spans_by_trace.get(trace_id, set()):
            problems.append(
                f"event[{i}]: parent_id {parent_id} not found in trace {trace_id}")

    if min_span_names > 0:
        best = max((len(names) for names in names_by_trace.values()), default=0)
        if best < min_span_names:
            problems.append(
                f"no trace has >= {min_span_names} distinct span names "
                f"(best: {best}; traces: {len(names_by_trace)})")
    if require_slow and not slow_seen:
        problems.append("no slow-request exemplar found "
                        "(no serve.slow_request marker or args.slow_us)")
    return problems


def main():
    argv = sys.argv[1:]
    min_span_names = 0
    require_slow = False
    paths = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--min-span-names":
            if i + 1 >= len(argv) or not argv[i + 1].isdigit():
                print(__doc__)
                return 2
            min_span_names = int(argv[i + 1])
            i += 2
        elif arg == "--require-slow":
            require_slow = True
            i += 1
        else:
            paths.append(arg)
            i += 1
    if len(paths) > 1:
        print(__doc__)
        return 2

    try:
        if paths:
            with open(paths[0]) as f:
                text = f.read()
        else:
            text = sys.stdin.read()
    except OSError as err:
        print(f"check_trace_json: cannot read input: {err}")
        return 2
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        print(f"check_trace_json: not valid JSON: {err}")
        return 1

    problems = validate(doc, min_span_names, require_slow)
    if problems:
        for problem in problems:
            print(f"  [FAIL] {problem}")
        print(f"check_trace_json: {len(problems)} problem(s)")
        return 1
    events = doc.get("traceEvents", [])
    traces = {e.get("args", {}).get("trace_id")
              for e in events if isinstance(e, dict)} - {None}
    print(f"check_trace_json: ok ({len(events)} events, {len(traces)} traces)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
