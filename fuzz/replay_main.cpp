// fuzz/replay_main.cpp — standalone corpus/crash replayer (no libFuzzer).
//
// Usage: fuzz_replay <target> <file-or-directory>...
//
// Runs every named input through the target's harness entry point exactly as
// the fuzzer would. Use it to reproduce a CI crash artifact on a compiler
// without libFuzzer (the sanitizers still fire if the build enables them):
//
//   cmake -B build -DEVOFORECAST_SANITIZE=address,undefined
//   ./build/fuzz/fuzz_replay efr crash-da39a3ee.efr
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/harness.hpp"

namespace {

using Entry = int (*)(const std::uint8_t*, std::size_t);

struct Target {
  const char* name;
  Entry entry;
};

constexpr Target kTargets[] = {
    {"json", ef::fuzz::json_roundtrip},
    {"efr", ef::fuzz::efr_load},
    {"efr2", ef::fuzz::efr2_load},
    {"protocol", ef::fuzz::protocol_line},
    {"csv", ef::fuzz::csv_load},
};

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <json|efr|efr2|protocol|csv> <file-or-dir>...\n", argv[0]);
    return 2;
  }
  Entry entry = nullptr;
  for (const Target& t : kTargets) {
    if (std::strcmp(argv[1], t.name) == 0) entry = t.entry;
  }
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown target '%s' (expected json, efr, efr2, protocol, csv)\n", argv[1]);
    return 2;
  }

  std::size_t ran = 0;
  for (int i = 2; i < argc; ++i) {
    std::vector<std::filesystem::path> inputs;
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& e : std::filesystem::directory_iterator(arg)) {
        if (e.is_regular_file()) inputs.push_back(e.path());
      }
      std::sort(inputs.begin(), inputs.end());
    } else {
      inputs.push_back(arg);
    }
    for (const auto& path : inputs) {
      const std::vector<std::uint8_t> bytes = read_file(path);
      std::fprintf(stderr, "replay %s (%zu bytes)\n", path.c_str(), bytes.size());
      // Empty files are legal corpus members; hand the harness a valid
      // (non-null) pointer either way.
      static const std::uint8_t kEmpty = 0;
      entry(bytes.empty() ? &kEmpty : bytes.data(), bytes.size());
      ++ran;
    }
  }
  if (ran == 0) {
    std::fprintf(stderr, "no inputs found\n");
    return 1;
  }
  std::fprintf(stderr, "replayed %zu input(s), no crashes\n", ran);
  return 0;
}
