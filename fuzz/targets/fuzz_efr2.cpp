// libFuzzer target: fleet::FleetReader on hostile .efr v2 container bytes.
#include "harness/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  return ef::fuzz::efr2_load(data, size);
}
