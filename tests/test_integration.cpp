// End-to-end integration tests: the full pipeline (generator → dataset →
// multi-execution training → partial forecast → coverage-aware metrics) on
// each of the paper's three domains at reduced scale, plus head-to-head
// sanity against the global AR baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "baselines/ar.hpp"
#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "series/metrics.hpp"
#include "series/sunspot.hpp"
#include "series/venice.hpp"

namespace {

using ef::core::RuleSystemConfig;
using ef::core::WindowDataset;

std::vector<double> targets_of(const WindowDataset& data) {
  std::vector<double> out;
  out.reserve(data.count());
  for (std::size_t i = 0; i < data.count(); ++i) out.push_back(data.target(i));
  return out;
}

TEST(Integration, MackeyGlassEndToEnd) {
  const auto exp = ef::series::make_paper_mackey_glass();
  const WindowDataset train(exp.train, 4, 6);
  const WindowDataset test(exp.test, 4, 6);

  RuleSystemConfig cfg;
  cfg.evolution.population_size = 50;
  cfg.evolution.generations = 3000;
  cfg.evolution.emax = 0.12;
  cfg.evolution.seed = 2024;
  cfg.coverage_target_percent = 70.0;
  cfg.max_executions = 3;

  const auto result = ef::core::train(train, {.config = cfg});
  ASSERT_FALSE(result.system.empty());

  const auto forecast = result.system.forecast_dataset(test);
  const auto report = ef::series::evaluate_partial(targets_of(test), forecast);

  // Scaled-down run: expect meaningful coverage and clearly sub-variance
  // error on the covered subset (NMSE < 1 = better than predicting the mean).
  EXPECT_GT(report.coverage_percent, 40.0);
  EXPECT_LT(report.nmse, 0.7);
}

TEST(Integration, VeniceEndToEndAndBeatsNothingburger) {
  const auto exp = ef::series::make_paper_venice(4000, 1000);
  const WindowDataset train(exp.train, 12, 4);
  const WindowDataset validation(exp.validation, 12, 4);

  RuleSystemConfig cfg;
  cfg.evolution.population_size = 40;
  cfg.evolution.generations = 2000;
  cfg.evolution.emax = 30.0;  // centimetres
  cfg.evolution.seed = 7;
  cfg.coverage_target_percent = 80.0;
  cfg.max_executions = 3;

  const auto result = ef::core::train(train, {.config = cfg});
  const auto forecast = result.system.forecast_dataset(validation);
  const auto report = ef::series::evaluate_partial(targets_of(validation), forecast);

  EXPECT_GT(report.coverage_percent, 50.0);
  // Tide range is ~200 cm; any real model must land far below that.
  EXPECT_LT(report.rmse, 25.0);
  EXPECT_LT(report.nmse, 1.0);
}

TEST(Integration, SunspotEndToEnd) {
  const auto exp = ef::series::make_paper_sunspots();
  const WindowDataset train(exp.train, 12, 1);
  const WindowDataset validation(exp.validation, 12, 1);

  RuleSystemConfig cfg;
  cfg.evolution.population_size = 40;
  cfg.evolution.generations = 2000;
  cfg.evolution.emax = 0.25;  // normalised units
  cfg.evolution.seed = 3;
  cfg.coverage_target_percent = 80.0;
  cfg.max_executions = 3;

  const auto result = ef::core::train(train, {.config = cfg});
  const auto forecast = result.system.forecast_dataset(validation);
  const auto report = ef::series::evaluate_partial(targets_of(validation), forecast);

  EXPECT_GT(report.coverage_percent, 50.0);
  EXPECT_LT(report.nmse, 0.6);
}

TEST(Integration, RuleSystemSerialisationPreservesForecasts) {
  const auto exp = ef::series::make_paper_mackey_glass();
  const WindowDataset train(exp.train, 4, 1);
  const WindowDataset test(exp.test, 4, 1);

  RuleSystemConfig cfg;
  cfg.evolution.population_size = 20;
  cfg.evolution.generations = 500;
  cfg.evolution.emax = 0.15;
  cfg.evolution.seed = 99;
  cfg.max_executions = 1;

  const auto result = ef::core::train(train, {.config = cfg});

  std::stringstream buffer;
  result.system.save(buffer);
  const auto loaded = ef::core::RuleSystem::load(buffer);

  const auto original = result.system.forecast_dataset(test);
  const auto restored = loaded.forecast_dataset(test);
  ASSERT_EQ(original.size(), restored.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(original[i].has_value(), restored[i].has_value()) << i;
    if (original[i]) {
      EXPECT_NEAR(*original[i], *restored[i], 1e-12) << i;
    }
  }
}

// The paper's core claim in miniature: on a series with rare extreme events
// (Venice storms), the rule system's covered-subset accuracy on extreme
// targets should not collapse the way the global linear model's does.
TEST(Integration, LocalRulesHandleExtremesAtLongHorizon) {
  const auto exp = ef::series::make_paper_venice(6000, 1500);
  // Long horizon: global linear models lose the surge information.
  const WindowDataset train(exp.train, 12, 24);
  const WindowDataset validation(exp.validation, 12, 24);

  RuleSystemConfig cfg;
  cfg.evolution.population_size = 60;
  cfg.evolution.generations = 8000;
  cfg.evolution.emax = 30.0;
  cfg.evolution.seed = 12;
  cfg.coverage_target_percent = 85.0;
  cfg.max_executions = 4;

  const auto result = ef::core::train(train, {.config = cfg});
  const auto forecast = result.system.forecast_dataset(validation);

  ef::baselines::ArModel ar;
  ar.fit(train);
  const auto ar_pred = ar.predict_all(validation);

  // Error restricted to extreme targets (top decile of the validation set).
  std::vector<double> all_targets = targets_of(validation);
  std::vector<double> sorted = all_targets;
  std::sort(sorted.begin(), sorted.end());
  const double extreme_threshold = sorted[sorted.size() * 9 / 10];

  double rs_err = 0.0;
  double ar_err = 0.0;
  std::size_t rs_n = 0;
  std::size_t ar_n = 0;
  for (std::size_t i = 0; i < all_targets.size(); ++i) {
    if (all_targets[i] < extreme_threshold) continue;
    ar_err += std::abs(ar_pred[i] - all_targets[i]);
    ++ar_n;
    if (forecast[i]) {
      rs_err += std::abs(*forecast[i] - all_targets[i]);
      ++rs_n;
    }
  }
  ASSERT_GT(ar_n, 0u);
  ASSERT_GT(rs_n, 10u);  // the rule system must actually cover extremes
  // On the extremes the local rules should at least be competitive
  // (allow 15 % slack — this is a reduced-scale statistical test).
  EXPECT_LT(rs_err / static_cast<double>(rs_n),
            1.15 * ar_err / static_cast<double>(ar_n));
}

// Failure injection: degenerate inputs must fail loudly, not corrupt state.
TEST(Integration, DegenerateInputsRejected) {
  // Series shorter than D+τ.
  const ef::series::TimeSeries tiny(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_THROW(WindowDataset(tiny, 24, 1), std::invalid_argument);

  // NaN rejected at the series boundary.
  EXPECT_THROW(ef::series::TimeSeries(std::vector<double>{1.0, std::nan("")}),
               std::invalid_argument);

  // Constant series: the pipeline must run (not crash) even though there is
  // nothing to learn.
  const ef::series::TimeSeries flat(std::vector<double>(200, 1.0));
  const WindowDataset data(flat, 4, 1);
  RuleSystemConfig cfg;
  cfg.evolution.population_size = 8;
  cfg.evolution.generations = 50;
  cfg.evolution.emax = 0.1;
  cfg.max_executions = 1;
  const auto result = ef::core::train(data, {.config = cfg});
  EXPECT_DOUBLE_EQ(result.train_coverage_percent, 100.0);
  const auto forecast = result.system.forecast_dataset(data);
  for (const auto& p : forecast) {
    ASSERT_TRUE(p.has_value());
    EXPECT_NEAR(*p, 1.0, 1e-6);
  }
}

}  // namespace
