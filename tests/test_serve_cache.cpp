// Tests for serve/window_cache.hpp: quantized-key roundtrips (values and
// abstentions alike), LRU eviction/refresh, stat counters, and key
// separation across model tag / horizon / aggregation.
#include "serve/window_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

namespace {

using ef::core::Aggregation;
using ef::serve::CacheConfig;
using ef::serve::WindowCache;

WindowCache::Value value_of(double v, std::uint32_t votes = 1) {
  WindowCache::Value out;
  out.value = v;
  out.votes = votes;
  return out;
}

TEST(WindowCache, RoundTripValueAndAbstention) {
  WindowCache cache;
  const std::vector<double> window{0.1, 0.2, 0.3};
  const auto key = cache.make_key(7, 1, Aggregation::kMean, window);

  EXPECT_FALSE(cache.get(key).has_value());
  cache.put(key, value_of(0.42, 3));
  const auto hit = cache.get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->abstain);
  EXPECT_DOUBLE_EQ(hit->value, 0.42);
  EXPECT_EQ(hit->votes, 3u);

  // Abstentions are cached like values.
  const auto akey = cache.make_key(7, 1, Aggregation::kMean, std::vector<double>{9.0, 9.0, 9.0});
  WindowCache::Value abstain;
  abstain.abstain = true;
  cache.put(akey, abstain);
  const auto ahit = cache.get(akey);
  ASSERT_TRUE(ahit.has_value());
  EXPECT_TRUE(ahit->abstain);
  EXPECT_EQ(ahit->votes, 0u);
}

TEST(WindowCache, QuantizationMergesSubGridJitter) {
  CacheConfig config;
  config.quantum = 1e-6;
  WindowCache cache(config);

  const std::vector<double> base{0.5, 0.25};
  // Jitter far below the grid: same key.
  const std::vector<double> jittered{0.5 + 1e-9, 0.25 - 1e-9};
  // Offset beyond the grid: different key.
  const std::vector<double> shifted{0.5 + 1e-4, 0.25};

  const auto k1 = cache.make_key(1, 1, Aggregation::kMean, base);
  const auto k2 = cache.make_key(1, 1, Aggregation::kMean, jittered);
  const auto k3 = cache.make_key(1, 1, Aggregation::kMean, shifted);
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);

  cache.put(k1, value_of(1.0));
  EXPECT_TRUE(cache.get(k2).has_value());
  EXPECT_FALSE(cache.get(k3).has_value());
}

TEST(WindowCache, KeySeparation) {
  WindowCache cache;
  const std::vector<double> window{0.3, 0.6};
  const auto base = cache.make_key(1, 1, Aggregation::kMean, window);
  // Any change in the snapshot tag, horizon or aggregation must miss.
  EXPECT_NE(base, cache.make_key(2, 1, Aggregation::kMean, window));
  EXPECT_NE(base, cache.make_key(1, 2, Aggregation::kMean, window));
  EXPECT_NE(base, cache.make_key(1, 1, Aggregation::kMedian, window));

  cache.put(base, value_of(5.0));
  EXPECT_FALSE(cache.get(cache.make_key(2, 1, Aggregation::kMean, window)).has_value());
  EXPECT_FALSE(cache.get(cache.make_key(1, 2, Aggregation::kMean, window)).has_value());
  EXPECT_FALSE(cache.get(cache.make_key(1, 1, Aggregation::kMedian, window)).has_value());
  EXPECT_TRUE(cache.get(base).has_value());
}

TEST(WindowCache, LruEvictionAndRefresh) {
  CacheConfig config;
  config.capacity = 4;
  config.shards = 1;  // deterministic LRU order
  WindowCache cache(config);

  auto key_of = [&](int i) {
    return cache.make_key(1, 1, Aggregation::kMean, std::vector<double>{static_cast<double>(i)});
  };

  for (int i = 0; i < 4; ++i) cache.put(key_of(i), value_of(i));
  // Touch key 0 so key 1 becomes the LRU victim.
  EXPECT_TRUE(cache.get(key_of(0)).has_value());
  cache.put(key_of(4), value_of(4.0));

  EXPECT_TRUE(cache.get(key_of(0)).has_value());
  EXPECT_FALSE(cache.get(key_of(1)).has_value());  // evicted
  EXPECT_TRUE(cache.get(key_of(2)).has_value());
  EXPECT_TRUE(cache.get(key_of(3)).has_value());
  EXPECT_TRUE(cache.get(key_of(4)).has_value());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 4u);
}

TEST(WindowCache, PutOverwritesInPlace) {
  CacheConfig config;
  config.capacity = 2;
  config.shards = 1;
  WindowCache cache(config);
  const auto key = cache.make_key(1, 1, Aggregation::kMean, std::vector<double>{1.0});
  cache.put(key, value_of(1.0));
  cache.put(key, value_of(2.0));
  const auto hit = cache.get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->value, 2.0);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(WindowCache, StatsAndClear) {
  WindowCache cache;
  const auto key = cache.make_key(1, 1, Aggregation::kMean, std::vector<double>{0.5});
  EXPECT_FALSE(cache.get(key).has_value());
  cache.put(key, value_of(1.0));
  EXPECT_TRUE(cache.get(key).has_value());
  EXPECT_TRUE(cache.get(key).has_value());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.get(key).has_value());
}

TEST(WindowCache, NonFiniteWindowValuesProduceStableKeys) {
  // Saturating quantization: NaN and infinities must not crash or UB; they
  // map to fixed buckets so lookups stay deterministic.
  WindowCache cache;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const auto k1 = cache.make_key(1, 1, Aggregation::kMean, std::vector<double>{nan, inf, -inf});
  const auto k2 = cache.make_key(1, 1, Aggregation::kMean, std::vector<double>{nan, inf, -inf});
  EXPECT_EQ(k1, k2);
  cache.put(k1, value_of(3.0));
  EXPECT_TRUE(cache.get(k2).has_value());
}

TEST(WindowCache, ConcurrentMixedTraffic) {
  CacheConfig config;
  config.capacity = 128;
  config.shards = 4;
  WindowCache cache(config);

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const double v = static_cast<double>((t * 31 + i) % 200);
        const auto key = cache.make_key(1, 1, Aggregation::kMean, std::vector<double>{v});
        if (const auto hit = cache.get(key)) {
          // A hit must always carry the value that was stored for this key.
          EXPECT_DOUBLE_EQ(hit->value, v * 2.0);
        } else {
          cache.put(key, value_of(v * 2.0));
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(stats.entries, 128u);
}

}  // namespace
