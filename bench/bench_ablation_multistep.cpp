// bench_ablation_multistep — Ablation F: direct vs iterated multi-step
// forecasting. The paper trains one rule system per horizon (direct); the
// classical alternative trains a single one-step system and feeds its
// predictions back τ times. On a chaotic series error compounds through the
// chain, so direct should win at long horizons — this bench quantifies the
// crossover on Mackey-Glass.
#include <cstdio>

#include "bench_common.hpp"
#include "core/multistep.hpp"
#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");
  const auto window = static_cast<std::size_t>(cli.get_int("window", 8));
  const auto generations =
      static_cast<std::size_t>(cli.get_int("generations", full ? 40000 : 10000));

  std::printf("Ablation F — direct vs iterated multi-step forecasting (Mackey-Glass)\n");
  ef::bench::print_rule('=');

  const auto experiment = ef::series::make_paper_mackey_glass();

  // One-step system, trained once (consecutive windows: iteration needs
  // stride 1).
  ef::core::RuleSystemConfig one_cfg;
  one_cfg.evolution.population_size = 100;
  one_cfg.evolution.generations = generations;
  one_cfg.evolution.emax = 0.08;
  one_cfg.evolution.seed = 21;
  one_cfg.coverage_target_percent = 95.0;
  one_cfg.max_executions = 4;

  const ef::core::WindowDataset one_train(experiment.train, window, 1);
  const auto one_step = ef::core::train(one_train, {.config = one_cfg});
  std::printf("one-step system: %zu rules, train coverage %.1f%%\n\n",
              one_step.system.size(), one_step.train_coverage_percent);

  std::printf("%4s | %8s %9s | %8s %9s | %9s\n", "tau", "dir-cov%", "dir-nmse",
              "itr-cov%", "itr-nmse", "itr-nmse*");
  std::printf("%56s\n", "(* = persistence-bridged abstentions)");
  ef::bench::print_rule();

  for (const std::size_t tau : {2u, 5u, 10u, 20u, 50u}) {
    const ef::core::WindowDataset train(experiment.train, window, tau);
    const ef::core::WindowDataset test(experiment.test, window, tau);
    const auto actual = ef::bench::targets_of(test);

    // Direct: a dedicated system per horizon (the paper's approach).
    ef::core::RuleSystemConfig direct_cfg = one_cfg;
    direct_cfg.evolution.emax = 0.08 + 0.0015 * static_cast<double>(tau);
    direct_cfg.evolution.seed = 21 + tau;
    const auto direct = ef::bench::run_rule_system(train, test, direct_cfg);

    // Iterated: the one-step system chained tau times.
    const auto strict = ef::core::iterate_forecast_dataset(
        one_step.system, test, ef::core::ChainAbstention::kAbstain);
    const auto strict_report = ef::series::evaluate_partial(actual, strict);
    const auto bridged = ef::core::iterate_forecast_dataset(
        one_step.system, test, ef::core::ChainAbstention::kPersistence);
    const auto bridged_report = ef::series::evaluate_partial(actual, bridged);

    std::printf("%4zu | %7.1f%% %9.4f | %7.1f%% %9.4f | %9.4f\n", tau,
                direct.report.coverage_percent, direct.report.nmse,
                strict_report.coverage_percent, strict_report.nmse, bridged_report.nmse);
    std::fflush(stdout);
  }

  ef::bench::print_rule();
  std::printf(
      "Expected shape: iterated forecasting is competitive at small tau but its\n"
      "error compounds on the chaotic series; direct per-horizon systems degrade\n"
      "far more slowly — supporting the paper's direct-forecast design. Strict\n"
      "abstention chaining also collapses coverage as tau grows (any abstaining\n"
      "link breaks the chain).\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
