// Tests for fleet/container.hpp: the `.efr` v2 multi-model container.
// Round-trip (pack → load → bit-identical forecasts vs the v1 text format),
// index lookup semantics, writer validation, and strict load hardening —
// truncated files, corrupt headers, out-of-bounds offsets, unsorted ids and
// non-finite payloads must all be rejected before any model is served.
#include "fleet/container.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <vector>

#include "core/dataset.hpp"
#include "core/rule_system.hpp"
#include "fleet/bulk_trainer.hpp"
#include "series/synthetic.hpp"

namespace {

using ef::core::RuleSystem;
using ef::fleet::FleetReader;
using ef::fleet::FleetWriter;

/// A small genuinely-trained system (not hand-built), so round-trips cover
/// wildcards, negative coefficients and real residual stats.
RuleSystem trained_system(std::uint64_t seed) {
  const auto series = ef::series::generate_sine(240, {1.0, 21.0, 0.3, 0.0, 0.05, seed});
  const ef::core::WindowDataset data(series, 4, 1);
  ef::core::RuleSystemConfig config;
  config.evolution.population_size = 24;
  config.evolution.generations = 150;
  config.evolution.emax = 0.2;
  config.evolution.seed = seed;
  config.max_executions = 1;
  return ef::core::train(data, {.config = config}).system;
}

/// v1 text round-trip: the bit-identity reference for container payloads.
RuleSystem via_v1_text(const RuleSystem& system) {
  std::stringstream buffer;
  system.save(buffer);
  return RuleSystem::load(buffer);
}

std::vector<std::uint8_t> encode_fleet(const std::vector<std::uint64_t>& seeds) {
  FleetWriter writer;
  for (const std::uint64_t seed : seeds) {
    writer.add("series-" + std::to_string(seed), trained_system(seed));
  }
  return writer.encode();
}

/// Forecast both systems over a probe dataset and require *bit* equality —
/// the container must not perturb a single ULP relative to v1.
void expect_identical_forecasts(const RuleSystem& a, const RuleSystem& b) {
  ASSERT_EQ(a.size(), b.size());
  const auto probe = ef::series::generate_sine(120, {1.0, 21.0, 0.0, 0.0, 0.1, 99});
  const ef::core::WindowDataset data(probe, 4, 1);
  for (std::size_t i = 0; i < data.count(); ++i) {
    const auto pa = a.forecast(data.pattern(i)).as_optional();
    const auto pb = b.forecast(data.pattern(i)).as_optional();
    ASSERT_EQ(pa.has_value(), pb.has_value()) << "pattern " << i;
    if (pa.has_value()) {
      ASSERT_EQ(std::memcmp(&*pa, &*pb, sizeof(double)), 0) << "pattern " << i;
    }
  }
}

TEST(FleetContainer, RoundTripBitIdenticalToV1) {
  const RuleSystem original = trained_system(7);
  ASSERT_GT(original.size(), 0u);

  FleetWriter writer;
  writer.add("alpha", original);
  auto reader = FleetReader::from_bytes(writer.encode());
  ASSERT_EQ(reader.size(), 1u);

  const RuleSystem from_container = reader.materialize_at(0);
  expect_identical_forecasts(from_container, via_v1_text(original));
  expect_identical_forecasts(from_container, original);
}

TEST(FleetContainer, IndexIsSortedAndSearchable) {
  FleetWriter writer;
  const RuleSystem system = trained_system(3);
  // Added out of order; the index must come back sorted.
  writer.add("zebra", system);
  writer.add("ant", system);
  writer.add("mule", system);
  auto reader = FleetReader::from_bytes(writer.encode());
  ASSERT_EQ(reader.size(), 3u);
  EXPECT_EQ(reader.id_at(0), "ant");
  EXPECT_EQ(reader.id_at(1), "mule");
  EXPECT_EQ(reader.id_at(2), "zebra");
  EXPECT_EQ(reader.find("mule"), std::optional<std::size_t>(1));
  EXPECT_FALSE(reader.find("aardvark").has_value());
  EXPECT_FALSE(reader.find("").has_value());
  EXPECT_TRUE(reader.contains("zebra"));
  EXPECT_EQ(reader.rule_count_at(0), system.size());
  EXPECT_EQ(reader.ids(), (std::vector<std::string>{"ant", "mule", "zebra"}));
}

TEST(FleetContainer, FileRoundTripViaMmap) {
  const auto path =
      (std::filesystem::temp_directory_path() / "fleet_container_test.efr2").string();
  FleetWriter writer;
  const RuleSystem original = trained_system(11);
  writer.add("only", original);
  writer.write_file(path);

  auto reader = FleetReader::open(path);
  EXPECT_EQ(reader.bytes(), std::filesystem::file_size(path));
  ASSERT_EQ(reader.size(), 1u);
  const auto materialized = reader.materialize("only");
  ASSERT_TRUE(materialized.has_value());
  expect_identical_forecasts(*materialized, original);
  std::filesystem::remove(path);
}

TEST(FleetContainer, WriterRejectsBadInput) {
  FleetWriter writer;
  const RuleSystem system = trained_system(5);
  EXPECT_THROW(writer.add("", system), std::invalid_argument);
  writer.add("dup", system);
  EXPECT_THROW(writer.add("dup", system), std::invalid_argument);
  EXPECT_THROW(writer.add(std::string(5000, 'x'), system), std::invalid_argument);
}

TEST(FleetContainer, EmptyContainerRoundTrips) {
  const FleetWriter writer;
  auto reader = FleetReader::from_bytes(writer.encode());
  EXPECT_TRUE(reader.empty());
  EXPECT_FALSE(reader.find("anything").has_value());
}

// ---- hardening -----------------------------------------------------------

TEST(FleetContainerHardening, TruncationsRejected) {
  const auto bytes = encode_fleet({1, 2});
  // Every strict prefix must be rejected at open — sweep a spread of cut
  // points including "header only" and "one byte short".
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{63}, std::size_t{64},
        std::size_t{100}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)FleetReader::from_bytes(std::move(cut)), std::runtime_error)
        << "kept " << keep << " of " << bytes.size();
  }
}

TEST(FleetContainerHardening, BadMagicAndVersionRejected) {
  auto bytes = encode_fleet({1});
  auto corrupt = bytes;
  corrupt[0] = 'X';
  EXPECT_THROW((void)FleetReader::from_bytes(std::move(corrupt)), std::runtime_error);
  corrupt = bytes;
  corrupt[8] = 0x7f;  // version
  EXPECT_THROW((void)FleetReader::from_bytes(std::move(corrupt)), std::runtime_error);
  corrupt = bytes;
  corrupt[12] = 1;  // flags must be zero
  EXPECT_THROW((void)FleetReader::from_bytes(std::move(corrupt)), std::runtime_error);
}

TEST(FleetContainerHardening, HostileCountsAndOffsetsRejected) {
  const auto bytes = encode_fleet({1});
  const auto poke_u64 = [&](std::size_t offset, std::uint64_t value) {
    auto corrupt = bytes;
    std::memcpy(corrupt.data() + offset, &value, sizeof(value));
    EXPECT_THROW((void)FleetReader::from_bytes(std::move(corrupt)), std::runtime_error)
        << "u64@" << offset << " = " << value;
  };
  poke_u64(16, ~0ull);                 // n_models absurd
  poke_u64(16, 2);                     // n_models > actual index entries
  poke_u64(24, 0);                     // index_off not canonical
  poke_u64(32, ~0ull - 8);             // ids_off out of file
  poke_u64(40, ~0ull / 2);             // ids_bytes overflows the file
  poke_u64(48, 3);                     // models_off misaligned
  poke_u64(56, 10);                    // declared size != actual
}

TEST(FleetContainerHardening, CorruptIndexEntryRejected) {
  const auto bytes = encode_fleet({1});
  // IndexEntry 0 starts at 64: id_off u64, id_len u32, rule_count u32,
  // model_off u64, model_len u64.
  const auto poke = [&](std::size_t offset, std::uint64_t value, std::size_t width) {
    auto corrupt = bytes;
    std::memcpy(corrupt.data() + offset, &value, width);
    EXPECT_THROW((void)FleetReader::from_bytes(std::move(corrupt)), std::runtime_error)
        << "index@" << offset;
  };
  poke(64, ~0ull, 8);       // id_off near UINT64_MAX (overflow guard)
  poke(72, 0, 4);           // empty id
  poke(72, 1u << 20, 4);    // id_len past the arena
  poke(80, 64, 8);          // model_off inside the index region
  poke(88, ~0ull, 8);       // model_len overflows the file
}

TEST(FleetContainerHardening, UnsortedOrDuplicateIdsRejected) {
  const RuleSystem system = trained_system(2);
  FleetWriter writer;
  writer.add("aa", system);
  writer.add("bb", system);
  auto bytes = writer.encode();
  // Both ids are 2 bytes; swapping the two id_off fields (index entries at
  // 64 and 96) makes the index lexicographically descending.
  std::uint64_t off0 = 0;
  std::uint64_t off1 = 0;
  std::memcpy(&off0, bytes.data() + 64, 8);
  std::memcpy(&off1, bytes.data() + 96, 8);
  auto unsorted = bytes;
  std::memcpy(unsorted.data() + 64, &off1, 8);
  std::memcpy(unsorted.data() + 96, &off0, 8);
  EXPECT_THROW((void)FleetReader::from_bytes(std::move(unsorted)), std::runtime_error);
  // Pointing both entries at the same id makes a duplicate.
  auto duplicate = bytes;
  std::memcpy(duplicate.data() + 96, &off0, 8);
  EXPECT_THROW((void)FleetReader::from_bytes(std::move(duplicate)), std::runtime_error);
}

TEST(FleetContainerHardening, CorruptPayloadRejectedAtMaterialize) {
  FleetWriter writer;
  writer.add("m", trained_system(4));
  const auto bytes = writer.encode();
  std::uint64_t models_off = 0;
  std::memcpy(&models_off, bytes.data() + 48, 8);

  // Open never touches the payload, so corruption there must surface at
  // materialize_at — as an exception, never as garbage rules.
  const auto poke_payload = [&](std::size_t rel, std::uint64_t value) {
    auto corrupt = bytes;
    std::memcpy(corrupt.data() + models_off + rel, &value, 8);
    auto reader = FleetReader::from_bytes(std::move(corrupt));
    EXPECT_THROW((void)reader.materialize_at(0), std::runtime_error) << "payload@" << rel;
  };
  poke_payload(0, ~0ull);   // window cap
  poke_payload(0, 0);       // window zero
  poke_payload(8, ~0ull);   // n_coeffs cap
  // Non-finite fitness (payload offset 32 = fitness f64).
  const double inf = std::numeric_limits<double>::infinity();
  auto corrupt = bytes;
  std::memcpy(corrupt.data() + models_off + 32, &inf, 8);
  auto reader = FleetReader::from_bytes(std::move(corrupt));
  EXPECT_THROW((void)reader.materialize_at(0), std::runtime_error);
}

TEST(FleetContainer, OpenMissingFileThrows) {
  EXPECT_THROW((void)FleetReader::open("/nonexistent/fleet.efr2"), std::runtime_error);
}

}  // namespace
