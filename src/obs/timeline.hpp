// obs/timeline.hpp — request-scoped timeline tracing.
//
// The TraceRegistry (obs/trace.hpp) aggregates spans *per name*: it can say
// that serve.request_us p99 spiked, but not whether one concrete slow
// request burned its budget in queue wait, batch formation, the match
// kernel, or the response path. The timeline layer keeps the individual
// spans: every traced request gets a trace id, every span records
// {trace_id, span_id, parent_id, name, t_start, dur, arg}, and the whole
// tree survives the batcher's thread hop because the TraceContext travels
// with the request. Spans land in per-thread lock-free rings (seqlock
// slots, single writer per ring) and are exported on demand as Chrome
// trace-event JSON (obs/timeline_export.hpp) loadable in Perfetto or
// chrome://tracing.
//
// Cost model and sampling:
//   * Armed or not is one relaxed atomic load. With EVOFORECAST_TRACE_SAMPLE
//     unset/0 (the default), TraceScope construction checks that flag and
//     does NOTHING else — no clock read, no ring write, no id allocation.
//   * When armed (sample rate > 0), every span of every active trace is
//     recorded into the rings — a clock read plus ~10 relaxed stores into
//     the calling thread's own ring slot. The sample rate is a *head
//     sample over export*: each new trace draws once against the rate and
//     carries the verdict in its `sampled` flag; the exporter emits sampled
//     traces only.
//   * Slow-request exemplars ride on that tail-capture: a request that
//     blows the slow threshold calls Timeline::mark_slow(trace_id), and the
//     exporter keeps that trace's full span tree even when the draw said
//     "not sampled" — a histogram outlier always points at a concrete
//     timeline as long as its spans are still in the rings.
//
// Environment:
//   EVOFORECAST_TRACE_SAMPLE    fraction of traces exported (0..1; 0 = off)
//   EVOFORECAST_TRACE_CAPACITY  spans per thread ring (default 8192)
//
// Under -DEVOFORECAST_OBS=OFF every class here becomes an empty inline stub
// (zero instructions at call sites) and snapshots come back empty; callers
// need no #ifdefs.
#pragma once

#include <cstdint>
#include <vector>

#ifndef EVOFORECAST_OBS_ENABLED
#define EVOFORECAST_OBS_ENABLED 1
#endif

namespace ef::obs {

/// One finished span, as read back out of a ring. `name`/`arg_key` must be
/// string literals (the rings store the pointers, not copies).
struct TimelineSpan {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root of its trace
  const char* name = "";
  std::int64_t t_start_us = 0;  ///< µs since the process timeline epoch
  std::int64_t dur_us = 0;
  const char* arg_key = nullptr;  ///< optional single numeric argument
  double arg_value = 0.0;
  std::uint32_t thread_index = 0;  ///< stable per-ring id (Perfetto "tid")
  bool sampled = false;            ///< trace drew into the head sample
};

/// Everything the rings currently hold, plus the slow-request exemplar list.
struct TimelineSnapshot {
  struct SlowTrace {
    std::uint64_t trace_id = 0;
    double us = 0.0;  ///< the latency that tripped the slow threshold
  };
  std::vector<TimelineSpan> spans;  ///< ring order per thread; unsorted
  std::vector<SlowTrace> slow;      ///< newest-last, bounded
};

/// The id triple a request carries across threads. Copy it out of the
/// owning thread with current_context(), hand it to the worker, and adopt
/// it there with ContextGuard — spans opened under the guard join the same
/// trace with the right parent.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  ///< parent for spans opened under this context
  bool sampled = false;
  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

#if EVOFORECAST_OBS_ENABLED

/// Process-wide timeline state: the arming flag, the per-thread rings, the
/// slow-exemplar list. All static — there is one timeline per process, like
/// the metrics registry.
class Timeline {
 public:
  /// One relaxed atomic load; the entire hot-path cost when tracing is off.
  [[nodiscard]] static bool enabled() noexcept;

  /// rate <= 0 disarms tracing entirely; rate in (0,1] arms recording and
  /// head-samples that fraction of traces into the export set.
  static void set_sample_rate(double rate);
  [[nodiscard]] static double sample_rate();

  /// Spans per thread ring. Applies to rings created after the call (tests
  /// set this before spawning their emitting thread).
  static void set_ring_capacity(std::size_t spans);
  [[nodiscard]] static std::size_t ring_capacity();

  /// Force-keep `trace_id` at export: the slow-request exemplar hook. The
  /// list is bounded (oldest exemplars drop first); `us` is carried into
  /// the exported trace for display.
  static void mark_slow(std::uint64_t trace_id, double us);

  /// Consistent-enough copy of every ring (seqlock read; slots mid-write or
  /// overtaken by the writer are skipped) plus the slow list.
  [[nodiscard]] static TimelineSnapshot snapshot();

  /// Drop all recorded spans and slow exemplars. Test/bench helper: callers
  /// must quiesce emitting threads first, or concurrent emits may be lost
  /// (never UB — the slots are atomics).
  static void reset();

  /// µs on the timeline clock (steady, process-epoch relative).
  [[nodiscard]] static std::int64_t now_us() noexcept;

  /// Record one completed span under `ctx` with explicit timestamps — the
  /// retrospective form used across the batcher hop (queue wait is only
  /// known once the batch is picked up). parent_id 0 means "under
  /// ctx.span_id". Returns the new span id (0 when ctx is inactive).
  static std::uint64_t emit(const TraceContext& ctx, const char* name,
                            std::int64_t t_start_us, std::int64_t t_end_us,
                            std::uint64_t parent_id = 0, const char* arg_key = nullptr,
                            double arg_value = 0.0);
};

/// This thread's live context (inactive when no trace is open here).
[[nodiscard]] TraceContext current_context() noexcept;

/// RAII root: opens a new trace on this thread (drawing against the sample
/// rate), or — when a trace is already active here — a child span within
/// it, so nested subsystems (serve → train) compose instead of fighting
/// over the root. Does nothing when tracing is off and no trace is active.
class TraceScope {
 public:
  explicit TraceScope(const char* name) noexcept;
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Context to hand across threads: children attach under this span.
  [[nodiscard]] TraceContext context() const noexcept;
  [[nodiscard]] std::uint64_t trace_id() const noexcept;
  [[nodiscard]] bool active() const noexcept { return span_id_ != 0; }

 private:
  TraceContext prev_;
  const char* name_;
  std::int64_t t_start_us_ = 0;
  std::uint64_t span_id_ = 0;  ///< 0 = scope is inactive
};

/// RAII child span under this thread's current context; inactive (and
/// free) when no trace is open here.
class SpanScope {
 public:
  explicit SpanScope(const char* name) noexcept;
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attach one numeric argument (literal key) shown in Perfetto.
  void set_arg(const char* key, double value) noexcept {
    arg_key_ = key;
    arg_value_ = value;
  }
  [[nodiscard]] bool active() const noexcept { return span_id_ != 0; }

 private:
  const char* name_;
  const char* arg_key_ = nullptr;
  double arg_value_ = 0.0;
  std::int64_t t_start_us_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
};

/// RAII adoption of a foreign context on this thread (the batcher hop, pool
/// workers). Restores the previous context on destruction.
class ContextGuard {
 public:
  explicit ContextGuard(const TraceContext& ctx) noexcept;
  ~ContextGuard();

  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  TraceContext prev_;
};

#else  // EVOFORECAST_OBS_ENABLED == 0: every entry point is an inline no-op.

class Timeline {
 public:
  [[nodiscard]] static bool enabled() noexcept { return false; }
  static void set_sample_rate(double) {}
  [[nodiscard]] static double sample_rate() { return 0.0; }
  static void set_ring_capacity(std::size_t) {}
  [[nodiscard]] static std::size_t ring_capacity() { return 0; }
  static void mark_slow(std::uint64_t, double) {}
  [[nodiscard]] static TimelineSnapshot snapshot() { return {}; }
  static void reset() {}
  [[nodiscard]] static std::int64_t now_us() noexcept { return 0; }
  static std::uint64_t emit(const TraceContext&, const char*, std::int64_t, std::int64_t,
                            std::uint64_t = 0, const char* = nullptr, double = 0.0) {
    return 0;
  }
};

[[nodiscard]] inline TraceContext current_context() noexcept { return {}; }

class TraceScope {
 public:
  explicit TraceScope(const char*) noexcept {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  [[nodiscard]] TraceContext context() const noexcept { return {}; }
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return 0; }
  [[nodiscard]] bool active() const noexcept { return false; }
};

class SpanScope {
 public:
  explicit SpanScope(const char*) noexcept {}
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  void set_arg(const char*, double) noexcept {}
  [[nodiscard]] bool active() const noexcept { return false; }
};

class ContextGuard {
 public:
  explicit ContextGuard(const TraceContext&) noexcept {}
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;
};

#endif  // EVOFORECAST_OBS_ENABLED

}  // namespace ef::obs
