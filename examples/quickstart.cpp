// quickstart — the smallest end-to-end use of the evoforecast public API.
//
//   1. get a time series (here: the Mackey-Glass benchmark generator),
//   2. wrap it in a WindowDataset (D inputs → value τ ahead),
//   3. train a rule system (Michigan-style EA, §3 of the paper),
//   4. forecast and inspect coverage + error.
//
// Build & run:  ./build/examples/quickstart
//
// Observability flags (see docs/OBSERVABILITY.md):
//   --report              print the metrics/trace run report after the run
//   --metrics-json PATH   dump counters, gauges, histograms and spans as JSON
//   --metrics-csv PATH    same as flat CSV rows
#include <cstdio>

#include "core/rule_system.hpp"
#include "obs/run_report.hpp"
#include "series/mackey_glass.hpp"
#include "series/metrics.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  // 1. Data: the paper's exact Mackey-Glass arrangement (1000 train /
  //    500 test samples, normalised to [0,1]).
  const auto mg = ef::series::make_paper_mackey_glass();

  // 2. Windows: D = 4 inputs spaced 6 steps apart, predicting 50 ahead —
  //    the classic benchmark embedding.
  const std::size_t window = 4;
  const std::size_t horizon = 50;
  const std::size_t stride = 6;
  const ef::core::WindowDataset train(mg.train, window, horizon, stride);
  const ef::core::WindowDataset test(mg.test, window, horizon, stride);

  // 3. Train. The config mirrors the paper: population 100, 3-round
  //    tournament, crowding replacement, multi-execution until coverage.
  ef::core::RuleSystemConfig config;
  config.evolution.population_size = 100;
  config.evolution.generations = 10000;
  config.evolution.emax = 0.14;  // max error a rule may carry ([0,1] units)
  config.evolution.seed = 42;
  config.coverage_target_percent = 78.0;
  config.max_executions = 3;

  std::printf("training on %zu windows...\n", train.count());
  const auto result = ef::core::train(train, {.config = config});
  std::printf("done: %zu rules from %zu execution(s), train coverage %.1f%%\n",
              result.system.size(), result.executions, result.train_coverage_percent);

  // 4. Forecast the test range. The system abstains (nullopt) on windows no
  //    rule matches — that selectivity is the point of the method.
  const auto forecast = result.system.forecast_dataset(test);
  std::vector<double> actual;
  for (std::size_t i = 0; i < test.count(); ++i) actual.push_back(test.target(i));
  const auto report = ef::series::evaluate_partial(actual, forecast);

  std::printf("test coverage: %.1f%% (%zu of %zu windows)\n", report.coverage_percent,
              report.covered, report.total);
  std::printf("test NMSE over covered windows: %.4f (1.0 = predicting the mean)\n",
              report.nmse);
  std::printf("test RMSE over covered windows: %.4f\n", report.rmse);

  // Bonus: what does a learned rule look like? (paper §3.1 flat encoding)
  if (!result.system.empty()) {
    std::printf("\nexample evolved rule:\n  %s\n",
                result.system.rules().front().encode().c_str());
  }

  ef::obs::emit_cli_report(cli);
  return 0;
}
