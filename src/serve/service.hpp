// serve/service.hpp — the in-process forecast service.
//
// ForecastService is the complete serving pipeline: validate → cache
// lookup → micro-batched (or iterated multi-step) prediction → cache fill →
// instrumented response. It owns the cache and the batcher but only borrows
// the ModelStore, so several services (or a service plus an offline
// evaluator) can share one store. Tests drive this API directly — no
// sockets involved; the epoll reactor in serve/reactor.hpp is a
// line-protocol front end over it.
//
// Two call shapes:
//   predict(request)            — blocking; coalesced by the micro-batcher.
//   predict_async(request, cb)  — never blocks the calling thread. Errors
//       and cache hits complete inline (cb runs before the call returns);
//       batcher misses complete later on the batcher's dispatcher thread.
//       This is what lets one reactor thread keep thousands of pipelined
//       requests in flight.
//
// Abstention semantics follow the paper: a window matched by no rule gets
// an explicit "abstain" response, never a fabricated value. Multi-step
// requests (horizon > 1) iterate the one-step system, feeding each
// prediction back as the newest input; an abstention at any intermediate
// step abstains the whole chain (core::ChainAbstention::kAbstain policy).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregation.hpp"
#include "core/prediction.hpp"
#include "serve/batcher.hpp"
#include "serve/error.hpp"
#include "serve/model_store.hpp"
#include "serve/options.hpp"
#include "serve/window_cache.hpp"
#include "util/thread_pool.hpp"

namespace ef::serve {

struct PredictRequest {
  std::string model = "default";
  std::vector<double> window;  ///< most recent value last
  std::size_t horizon = 1;     ///< steps ahead; > 1 iterates the one-step system
  core::Aggregation agg = core::Aggregation::kMean;
  bool use_cache = true;  ///< per-request bypass (debugging, cache-busting)
};

struct PredictResponse {
  bool ok = false;
  ErrorCode code = ErrorCode::kNone;  ///< machine-readable cause when !ok
  std::string error;                  ///< human-readable reason when !ok
  std::string model;
  std::uint64_t version = 0;
  std::size_t horizon = 1;
  bool abstain = false;
  double value = 0.0;     ///< valid when ok && !abstain
  /// Interval half-width from the voting rules' training errors: the reply
  /// carries [value−bound, value+bound] on the wire (protocol v2). < 0 = no
  /// interval — abstentions, and iterated multi-step chains (a one-step
  /// bound does not compose across fed-back forecasts).
  double bound = -1.0;
  std::size_t votes = 0;  ///< matching rules behind the (final-step) forecast
  bool cached = false;
};

class ForecastService {
 public:
  /// Invoked exactly once per predict_async call — inline for errors, cache
  /// hits and multi-step chains, or on the batcher's dispatcher thread for
  /// batched misses. Must be cheap and non-blocking in the latter case.
  using PredictCallback = std::function<void(PredictResponse)>;

  explicit ForecastService(ModelStore& store, ServeOptions options = {},
                           util::ThreadPool* pool = nullptr);
  ~ForecastService();

  ForecastService(const ForecastService&) = delete;
  ForecastService& operator=(const ForecastService&) = delete;

  /// One blocking forecast. Thread-safe; concurrent callers are coalesced
  /// by the micro-batcher. Never throws for bad requests — returns
  /// ok=false with a code + reason instead (the protocol layer forwards it).
  [[nodiscard]] PredictResponse predict(const PredictRequest& request);

  /// Non-blocking forecast: validation failures, cache hits and multi-step
  /// chains invoke `done` before returning; single-step cache misses hand
  /// off to the micro-batcher and invoke `done` from its dispatcher thread.
  void predict_async(const PredictRequest& request, PredictCallback done);

  /// Drain in-flight batches and refuse further predicts (graceful
  /// shutdown). Idempotent.
  void shutdown();
  [[nodiscard]] bool accepting() const noexcept;

  [[nodiscard]] const ModelStore& store() const noexcept { return store_; }
  [[nodiscard]] ModelStore& store() noexcept { return store_; }
  [[nodiscard]] WindowCache::Stats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] const ServeOptions& options() const noexcept { return options_; }
  /// Forecast-quality tracker (ledger / accuracy / drift); null when
  /// disabled via ServeOptions::quality.
  [[nodiscard]] QualityTracker* quality() noexcept { return quality_.get(); }
  [[nodiscard]] const QualityTracker* quality() const noexcept { return quality_.get(); }

 private:
  /// Validation + model lookup shared by both call shapes. Returns the
  /// model on success; fills `response` (ok=false, code, error) on failure.
  [[nodiscard]] std::shared_ptr<const LoadedModel> prepare(
      const PredictRequest& request, PredictResponse& response);
  [[nodiscard]] core::Prediction predict_uncached(
      const std::shared_ptr<const LoadedModel>& model, const PredictRequest& request);

  ModelStore& store_;
  ServeOptions options_;
  util::ThreadPool* pool_;
  WindowCache cache_;
  std::unique_ptr<MicroBatcher> batcher_;  ///< null when enable_batcher = false
  std::unique_ptr<QualityTracker> quality_;  ///< null when quality disabled
  std::atomic<bool> accepting_{true};
};

}  // namespace ef::serve
