// bench_ablation_crowding — Ablation B (DESIGN.md): the paper replaces the
// *phenotypically nearest* individual (crowding) rather than the worst or a
// random one, arguing this preserves the population's spread over the
// prediction space. This bench compares the three replacement strategies and
// the three phenotypic-distance readings on Mackey-Glass τ = 50.
//
// Expected shape: crowding keeps coverage high (diversity preserved);
// replace-worst collapses the population onto the easy regions — higher
// mean fitness but lower coverage of the series.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");
  const auto window = static_cast<std::size_t>(cli.get_int("window", 4));
  const auto stride = static_cast<std::size_t>(cli.get_int("stride", 6));
  const auto horizon = static_cast<std::size_t>(cli.get_int("horizon", 50));
  const auto generations =
      static_cast<std::size_t>(cli.get_int("generations", full ? 40000 : 8000));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds", full ? 5 : 3));

  std::printf("Ablation B — replacement strategy & phenotypic distance "
              "(Mackey-Glass, tau=%zu)\n",
              horizon);
  ef::bench::print_rule('=');

  const auto experiment = ef::series::make_paper_mackey_glass();
  const ef::core::WindowDataset train(experiment.train, window, horizon, stride);
  const ef::core::WindowDataset test(experiment.test, window, horizon, stride);

  struct Variant {
    const char* name;
    ef::core::ReplacementStrategy replacement;
    ef::core::DistanceMetric distance;
  };
  const Variant variants[] = {
      {"crowding/prediction", ef::core::ReplacementStrategy::kCrowding,
       ef::core::DistanceMetric::kPrediction},
      {"crowding/overlap", ef::core::ReplacementStrategy::kCrowding,
       ef::core::DistanceMetric::kConditionOverlap},
      {"crowding/jaccard", ef::core::ReplacementStrategy::kCrowding,
       ef::core::DistanceMetric::kMatchedJaccard},
      {"replace-worst", ef::core::ReplacementStrategy::kReplaceWorst,
       ef::core::DistanceMetric::kPrediction},
      {"replace-random", ef::core::ReplacementStrategy::kRandom,
       ef::core::DistanceMetric::kPrediction},
  };

  std::printf("%-20s | %8s %9s %9s %7s\n", "variant", "cov%", "nmse", "rmse", "rules");
  ef::bench::print_rule();

  for (const Variant& v : variants) {
    double cov_sum = 0.0;
    double nmse_sum = 0.0;
    double rmse_sum = 0.0;
    double rules_sum = 0.0;
    for (std::size_t s = 0; s < seeds; ++s) {
      ef::core::RuleSystemConfig cfg;
      cfg.evolution.population_size = 100;
      cfg.evolution.generations = generations;
      cfg.evolution.emax = 0.14;
      cfg.evolution.replacement = v.replacement;
      cfg.evolution.distance = v.distance;
      cfg.evolution.seed = 200 + s;
      cfg.coverage_target_percent = 78.0;
      cfg.max_executions = 1;

      const auto rs = ef::bench::run_rule_system(train, test, cfg);
      cov_sum += rs.report.coverage_percent;
      nmse_sum += rs.report.nmse;
      rmse_sum += rs.report.rmse;
      rules_sum += static_cast<double>(rs.rules);
    }
    const auto n = static_cast<double>(seeds);
    std::printf("%-20s | %7.1f%% %9.4f %9.4f %7.1f\n", v.name, cov_sum / n, nmse_sum / n,
                rmse_sum / n, rules_sum / n);
    std::fflush(stdout);
  }

  ef::bench::print_rule();
  std::printf("Expected shape: crowding variants keep test coverage above replace-worst;\n"
              "replace-worst narrows the rule set (fewer surviving niches).\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
