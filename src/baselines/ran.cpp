#include "baselines/ran.hpp"

#include <cmath>
#include <stdexcept>

namespace ef::baselines {

void RanConfig::validate() const {
  if (epsilon <= 0.0) throw std::invalid_argument("RanConfig: epsilon must be > 0");
  if (delta_max < delta_min || delta_min <= 0.0) {
    throw std::invalid_argument("RanConfig: need delta_max >= delta_min > 0");
  }
  if (decay_tau <= 0.0) throw std::invalid_argument("RanConfig: decay_tau must be > 0");
  if (kappa <= 0.0) throw std::invalid_argument("RanConfig: kappa must be > 0");
  if (learning_rate <= 0.0) throw std::invalid_argument("RanConfig: learning_rate must be > 0");
  if (passes == 0) throw std::invalid_argument("RanConfig: passes must be >= 1");
  if (max_units == 0) throw std::invalid_argument("RanConfig: max_units must be >= 1");
}

Ran::Ran(RanConfig config) : config_(config) { config_.validate(); }

void Ran::fit(const core::WindowDataset& train) {
  units_ = RbfUnits{};  // retrain from scratch

  std::vector<double> responses;
  std::size_t sample_index = 0;
  for (std::size_t pass = 0; pass < config_.passes; ++pass) {
    for (std::size_t s = 0; s < train.count(); ++s, ++sample_index) {
      const auto x = train.pattern(s);
      const double target = train.target(s);
      const double y = units_.evaluate(x, &responses);
      const double error = y - target;

      // Novelty radius decays with the number of samples seen.
      const double delta =
          std::max(config_.delta_min,
                   config_.delta_max *
                       std::exp(-static_cast<double>(sample_index) / config_.decay_tau));

      const double dist = units_.nearest_center_distance(x);
      const bool novel = dist > delta;
      if (std::abs(error) > config_.epsilon && novel && units_.size() < config_.max_units) {
        // Width from the nearest centre; the very first unit uses δ itself.
        const double width =
            config_.kappa * (std::isfinite(dist) ? dist : config_.delta_max);
        units_.allocate(x, width, -error);  // -error: unit corrects the miss
      } else {
        units_.lms_update(x, error, responses, config_.learning_rate);
      }
    }
  }
  fitted_ = true;
}

double Ran::predict(std::span<const double> window) const {
  if (!fitted_) throw std::logic_error("Ran::predict before fit");
  return units_.evaluate(window);
}

}  // namespace ef::baselines
