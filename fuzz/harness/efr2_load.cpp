#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/rule_system.hpp"
#include "fleet/container.hpp"
#include "harness.hpp"

namespace ef::fuzz {

int efr2_load(const std::uint8_t* data, std::size_t size) {
  fleet::FleetReader reader;
  try {
    reader = fleet::FleetReader::from_bytes({data, data + size});
  } catch (const std::runtime_error&) {
    return 0;  // the contract for hostile bytes: reject loudly, typed
  }

  // A container that validated must have a structurally sound index:
  // strictly sorted ids, every one resolvable through binary search back to
  // its own slot.
  std::string previous;
  for (std::size_t i = 0; i < reader.size(); ++i) {
    const std::string id(reader.id_at(i));
    if (i > 0 && !(previous < id)) {
      std::fprintf(stderr, "efr2_load invariant violated: index not strictly sorted\n");
      std::abort();
    }
    previous = id;
    const auto found = reader.find(id);
    if (!found || *found != i) {
      std::fprintf(stderr, "efr2_load invariant violated: find(id_at(i)) != i\n");
      std::abort();
    }
  }

  // Materialisation is allowed to reject a corrupt payload (only the header
  // and index were validated at open) — but an accepted model must be fully
  // serving-ready: v1 save/load round-trips to the same rule count and a
  // forecast over an in-range window runs clean. Bounded work per call:
  // libFuzzer runs this millions of times.
  const std::size_t probe = std::min<std::size_t>(reader.size(), 8);
  for (std::size_t i = 0; i < probe; ++i) {
    core::RuleSystem system;
    try {
      system = reader.materialize_at(i);
    } catch (const std::runtime_error&) {
      continue;  // corrupt payload detected lazily: fine, typed
    }
    if (system.size() != reader.rule_count_at(i)) {
      std::fprintf(stderr, "efr2_load invariant violated: rule count mismatch\n");
      std::abort();
    }
    std::ostringstream saved;
    std::istringstream reload;
    try {
      system.save(saved);
      reload.str(saved.str());
      (void)core::RuleSystem::load(reload);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "efr2_load invariant violated: materialized model rejected by v1: %s\n",
                   e.what());
      std::abort();
    }
    if (!system.empty()) {
      const std::vector<double> window(system.rules().front().window(), 0.5);
      (void)system.forecast(window);
    }
  }
  return 0;
}

}  // namespace ef::fuzz
