// Tests for the alternative EA engines: generational (vs the paper's
// steady-state) and Pittsburgh (vs the paper's Michigan encoding).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/generational.hpp"
#include "core/pittsburgh.hpp"
#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::GenerationalConfig;
using ef::core::GenerationalEngine;
using ef::core::PittsburghConfig;
using ef::core::PittsburghEngine;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

TimeSeries noisy_sine(std::size_t n) {
  ef::util::Rng rng(31);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(static_cast<double>(i) * 0.2) + rng.normal(0.0, 0.03);
  }
  return TimeSeries(std::move(v));
}

// ---- generational -----------------------------------------------------------

GenerationalConfig generational_config() {
  GenerationalConfig cfg;
  cfg.base.population_size = 16;
  cfg.base.emax = 0.3;
  cfg.base.seed = 8;
  cfg.elite_count = 2;
  return cfg;
}

TEST(Generational, ConfigValidation) {
  GenerationalConfig cfg = generational_config();
  cfg.elite_count = cfg.base.population_size;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = generational_config();
  cfg.base.emax = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Generational, PopulationSizeStable) {
  const TimeSeries s = noisy_sine(400);
  const WindowDataset data(s, 4, 1);
  GenerationalEngine engine(data, generational_config());
  for (int g = 0; g < 5; ++g) {
    engine.step();
    ASSERT_EQ(engine.population().size(), 16u);
  }
  EXPECT_EQ(engine.generation(), 5u);
}

TEST(Generational, EvaluationAccounting) {
  const TimeSeries s = noisy_sine(400);
  const WindowDataset data(s, 4, 1);
  GenerationalEngine engine(data, generational_config());
  engine.step();
  // One step = population_size − elite_count offspring evaluations.
  EXPECT_EQ(engine.evaluations(), 14u);
  engine.run_evaluations(100);
  EXPECT_GE(engine.evaluations(), 100u);
}

TEST(Generational, ElitismPreservesBestFitness) {
  const TimeSeries s = noisy_sine(500);
  const WindowDataset data(s, 4, 1);
  GenerationalEngine engine(data, generational_config());
  double best = engine.snapshot().best_fitness;
  for (int g = 0; g < 20; ++g) {
    engine.step();
    const double now = engine.snapshot().best_fitness;
    ASSERT_GE(now, best - 1e-12);  // elites never regress
    best = now;
  }
}

TEST(Generational, Deterministic) {
  const TimeSeries s = noisy_sine(400);
  const WindowDataset data(s, 4, 1);
  GenerationalEngine a(data, generational_config());
  GenerationalEngine b(data, generational_config());
  for (int g = 0; g < 10; ++g) {
    a.step();
    b.step();
  }
  ASSERT_EQ(a.population().size(), b.population().size());
  for (std::size_t i = 0; i < a.population().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.population()[i].fitness(), b.population()[i].fitness());
  }
}

// ---- Pittsburgh -------------------------------------------------------------

PittsburghConfig pittsburgh_config() {
  PittsburghConfig cfg;
  cfg.population_size = 8;
  cfg.rules_per_individual = 6;
  cfg.max_rules = 12;
  cfg.generations = 5;
  cfg.emax = 0.3;
  cfg.seed = 9;
  return cfg;
}

TEST(Pittsburgh, ConfigValidation) {
  PittsburghConfig cfg = pittsburgh_config();
  cfg.population_size = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = pittsburgh_config();
  cfg.min_rules = 20;
  cfg.max_rules = 10;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = pittsburgh_config();
  cfg.add_rule_prob = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Pittsburgh, PopulationShape) {
  const TimeSeries s = noisy_sine(400);
  const WindowDataset data(s, 4, 1);
  PittsburghEngine engine(data, pittsburgh_config());
  ASSERT_EQ(engine.population().size(), 8u);
  for (const auto& individual : engine.population()) {
    EXPECT_EQ(individual.rules.size(), 6u);
    EXPECT_GE(individual.coverage_percent, 0.0);
    EXPECT_LE(individual.coverage_percent, 100.0);
  }
}

TEST(Pittsburgh, RuleCountsStayInBounds) {
  const TimeSeries s = noisy_sine(400);
  const WindowDataset data(s, 4, 1);
  PittsburghConfig cfg = pittsburgh_config();
  cfg.add_rule_prob = 0.5;
  cfg.delete_rule_prob = 0.5;
  PittsburghEngine engine(data, cfg);
  engine.run();
  for (const auto& individual : engine.population()) {
    EXPECT_GE(individual.rules.size(), cfg.min_rules);
    EXPECT_LE(individual.rules.size(), cfg.max_rules);
  }
}

TEST(Pittsburgh, BestFitnessImprovesOverGenerations) {
  const TimeSeries s = noisy_sine(600);
  const WindowDataset data(s, 4, 1);
  PittsburghConfig cfg = pittsburgh_config();
  cfg.generations = 20;
  PittsburghEngine engine(data, cfg);
  const double initial = engine.best().fitness;
  engine.run();
  EXPECT_GE(engine.best().fitness, initial);  // elitism: never worse
  EXPECT_GT(engine.best().fitness, 0.0);      // learned something real
}

TEST(Pittsburgh, BestSystemIsQueryable) {
  const TimeSeries s = noisy_sine(500);
  const WindowDataset data(s, 4, 1);
  PittsburghEngine engine(data, pittsburgh_config());
  engine.run();
  const auto system = engine.best_system();
  EXPECT_EQ(system.size(), engine.best().rules.size());
  // Coverage reported by the individual must match the system's.
  EXPECT_NEAR(system.coverage_percent(data), engine.best().coverage_percent, 1e-9);
}

TEST(Pittsburgh, EvaluationAccountingGrows) {
  const TimeSeries s = noisy_sine(400);
  const WindowDataset data(s, 4, 1);
  PittsburghEngine engine(data, pittsburgh_config());
  const std::size_t initial = engine.evaluations();
  EXPECT_EQ(initial, 8u * 6u);  // initial population
  engine.step();
  EXPECT_GT(engine.evaluations(), initial);
}

TEST(Pittsburgh, Deterministic) {
  const TimeSeries s = noisy_sine(400);
  const WindowDataset data(s, 4, 1);
  PittsburghEngine a(data, pittsburgh_config());
  PittsburghEngine b(data, pittsburgh_config());
  a.run();
  b.run();
  EXPECT_DOUBLE_EQ(a.best().fitness, b.best().fitness);
  EXPECT_EQ(a.best().rules.size(), b.best().rules.size());
}

}  // namespace
