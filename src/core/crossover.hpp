// crossover.hpp — uniform crossover over interval genes (paper §3.1).
//
// The offspring inherits, per gene position, either parent's interval with
// equal probability. The predicting part is explicitly NOT inherited — it is
// recomputed from the data after (possible) mutation, as the paper
// prescribes ("This offspring will not inherit the values for 'prediction'
// and 'error'").
#pragma once

#include <stdexcept>

#include "core/rule.hpp"
#include "util/rng.hpp"

namespace ef::core {

/// Offspring with each gene drawn from parent a or b with equal probability.
/// Throws std::invalid_argument when the parents' window lengths differ. The
/// offspring carries no predicting part (it must be (re-)evaluated).
[[nodiscard]] inline Rule uniform_crossover(const Rule& a, const Rule& b, util::Rng& rng) {
  if (a.window() != b.window()) {
    throw std::invalid_argument("uniform_crossover: parents have different window lengths");
  }
  std::vector<Interval> genes;
  genes.reserve(a.window());
  for (std::size_t j = 0; j < a.window(); ++j) {
    genes.push_back(rng.bernoulli(0.5) ? a.genes()[j] : b.genes()[j]);
  }
  return Rule(std::move(genes));
}

}  // namespace ef::core
