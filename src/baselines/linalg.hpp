// linalg.hpp — compact dense linear algebra shared by the neural baselines.
//
// Deliberately small: row-major Matrix, the BLAS-1/2/3 kernels the models
// need (gemv, gemm, axpy, outer-product update), and Cholesky/QR solvers for
// least-squares heads. Not a general-purpose library — sizes here are tens
// to hundreds, so clarity beats blocking/vectorisation tricks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ef::baselines {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// rows×cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols) {}
  /// From explicit data (size must be rows*cols; throws otherwise).
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

  void fill(double v) noexcept { std::fill(data_.begin(), data_.end(), v); }

  [[nodiscard]] Matrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A·x (sizes checked; throws std::invalid_argument on mismatch).
void gemv(const Matrix& a, std::span<const double> x, std::span<double> y);

/// y = Aᵀ·x.
void gemv_t(const Matrix& a, std::span<const double> x, std::span<double> y);

/// C = A·B.
[[nodiscard]] Matrix gemm(const Matrix& a, const Matrix& b);

/// y += alpha·x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// A += alpha·x·yᵀ (rank-1 update; x.size()==rows, y.size()==cols).
void rank1_update(Matrix& a, double alpha, std::span<const double> x,
                  std::span<const double> y);

/// Dot product.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> x);

/// Squared Euclidean distance between two equal-length vectors.
[[nodiscard]] double squared_distance(std::span<const double> x, std::span<const double> y);

/// Solve the least-squares problem min‖A·w − b‖₂ via Householder QR.
/// A is m×n with m ≥ n; returns w of length n. Throws std::invalid_argument
/// on shape errors and std::runtime_error on numerical rank deficiency.
[[nodiscard]] std::vector<double> solve_least_squares_qr(const Matrix& a,
                                                         std::span<const double> b);

}  // namespace ef::baselines
