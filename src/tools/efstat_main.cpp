// efstat — live terminal dashboard for a running efserve.
//
//   efstat --port 7777                  # refreshing dashboard, 1 s interval
//   efstat --port 7777 --once --json    # one machine-readable sample
//
// Polls the server over its own JSON-lines protocol: the "metrics" verb
// (Prometheus exposition, parsed into flat name{labels} → value samples)
// plus "models" for the deployed model table and "quality" for the live
// forecast-accuracy panel (rolling RMSE/MAE, interval coverage, abstention
// share, drift state — populated once actuals flow in via "observe"). Rates and latency quantiles
// prefer the server-side windowed series (last ~60 s); when the server has
// not accumulated two collector frames yet, efstat falls back to deltas
// between its own consecutive polls, interpolating quantiles from the
// histogram le-buckets.
//
// Flags:
//   --host A         server address (default 127.0.0.1)
//   --port N         server port (default 7777)
//   --interval-ms N  refresh interval (default 1000)
//   --once           sample once and exit (no screen clearing)
//   --json           emit the sample as one JSON object (implies no screen
//                    clearing; combine with --once for scripting)
//   --trace          fetch the server's request timeline ({"cmd":"trace"})
//                    and print a per-request latency breakdown table
//                    (queue / batch / cache / match / respond), then exit
//   --trace-rows N   max requests shown in --trace mode (default 20)
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "util/cli.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define EFSTAT_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define EFSTAT_HAVE_SOCKETS 0
#endif

namespace {

#if EFSTAT_HAVE_SOCKETS

/// One blocking JSON-lines round trip per request. Reconnects per poll —
/// simple, and the server's thread-per-connection model makes it cheap at
/// dashboard refresh rates.
class Client {
 public:
  Client(std::string host, std::uint16_t port) : host_(std::move(host)), port_(port) {}
  ~Client() { close(); }

  bool connect() {
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  std::optional<std::string> request(const std::string& line) {
    if (fd_ < 0 && !connect()) return std::nullopt;
    std::string out = line + "\n";
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t w = ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (w <= 0) {
        close();
        return std::nullopt;
      }
      sent += static_cast<std::size_t>(w);
    }
    std::string response;
    char chunk[4096];
    for (;;) {
      const std::size_t newline = response.find('\n');
      if (newline != std::string::npos) return response.substr(0, newline);
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        close();
        return std::nullopt;
      }
      response.append(chunk, static_cast<std::size_t>(n));
    }
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  std::string host_;
  std::uint16_t port_;
  int fd_ = -1;
};

#endif  // EFSTAT_HAVE_SOCKETS

/// Flat Prometheus sample set: "name" or "name{labels}" → value.
using Samples = std::map<std::string, double>;

/// Parse exposition text: skip comments, split each sample line at the last
/// space. Malformed lines are skipped (scraping keeps working if the server
/// grows new series).
Samples parse_prometheus(const std::string& text) {
  Samples out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    char* parse_end = nullptr;
    double v = std::strtod(value.c_str(), &parse_end);
    if (value == "+Inf") v = HUGE_VAL;
    else if (parse_end == value.c_str()) continue;
    out[key] = v;
  }
  return out;
}

std::optional<double> sample(const Samples& samples, const std::string& key) {
  const auto it = samples.find(key);
  if (it == samples.end()) return std::nullopt;
  return it->second;
}

double sample_or(const Samples& samples, const std::string& key, double fallback) {
  return sample(samples, key).value_or(fallback);
}

/// le-bucket series of one histogram, cumulative counts sorted by bound.
struct Buckets {
  std::vector<double> bounds;  ///< +Inf last
  std::vector<double> counts;  ///< cumulative, same length
};

Buckets histogram_buckets(const Samples& samples, const std::string& base) {
  const std::string prefix = base + "_bucket{le=\"";
  std::vector<std::pair<double, double>> pairs;
  for (auto it = samples.lower_bound(prefix); it != samples.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    const std::string le = it->first.substr(prefix.size(),
                                            it->first.size() - prefix.size() - 2);
    const double bound = le == "+Inf" ? HUGE_VAL : std::strtod(le.c_str(), nullptr);
    pairs.emplace_back(bound, it->second);
  }
  std::sort(pairs.begin(), pairs.end());
  Buckets out;
  for (const auto& [bound, count] : pairs) {
    out.bounds.push_back(bound);
    out.counts.push_back(count);
  }
  return out;
}

/// Quantile by linear interpolation over (possibly delta'd) cumulative
/// buckets — the client-side fallback when the server has no window yet.
double quantile(const Buckets& now, const Buckets* prev, double q) {
  if (now.counts.empty()) return 0.0;
  const bool diff = prev != nullptr && prev->counts.size() == now.counts.size();
  std::vector<double> cum(now.counts.size());
  for (std::size_t i = 0; i < now.counts.size(); ++i) {
    cum[i] = now.counts[i] - (diff ? prev->counts[i] : 0.0);
    if (cum[i] < 0.0) cum[i] = now.counts[i];  // counter reset: take absolute
  }
  const double total = cum.back();
  if (total <= 0.0) return 0.0;
  const double rank = q * total;
  double below = 0.0;
  for (std::size_t i = 0; i < cum.size(); ++i) {
    if (cum[i] >= rank) {
      const double lo = i == 0 ? 0.0 : now.bounds[i - 1];
      double hi = now.bounds[i];
      if (std::isinf(hi)) hi = now.bounds.size() > 1 ? now.bounds[now.bounds.size() - 2] : lo;
      const double in_bucket = cum[i] - below;
      const double frac = in_bucket > 0.0 ? (rank - below) / in_bucket : 0.0;
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    below = cum[i];
  }
  return 0.0;
}

struct ModelRow {
  std::string name;
  double version = 0;
  double rules = 0;
  double window = 0;
};

/// One tracked model from the "quality" verb. Accuracy stats may be null on
/// the wire (nothing matured yet) — the has_* flags carry that through.
struct QualityRow {
  std::string model;
  double tick = 0;
  double pending = 0;
  double window = 0;
  double rmse = 0;
  double mae = 0;
  double coverage = 0;
  double abstain_share = 0;
  bool has_rmse = false;
  bool has_coverage = false;
  bool drifted = false;
  double drift_detections = 0;
};

/// Everything one dashboard frame needs.
struct Sample {
  bool ok = false;
  std::string error;
  Samples metrics;
  std::vector<ModelRow> models;
  bool quality_armed = false;
  std::vector<QualityRow> quality;  ///< empty when quality is off/unarmed
  double poll_seconds = 0.0;  ///< since previous sample (client-side rates)
};

/// The derived numbers actually rendered; windowed when the server provides
/// them, client-side deltas otherwise.
struct Derived {
  double qps = 0.0;
  double p50_us = 0.0, p90_us = 0.0, p99_us = 0.0;
  double cache_hit_rate = 0.0;  ///< lifetime
  double abstain_per_sec = 0.0;
  double slow_requests = 0.0;   ///< lifetime count
  double errors = 0.0;          ///< lifetime count
  double requests_total = 0.0;
  double window_seconds = 0.0;  ///< 0 = client-side fallback used
  bool server_window = false;
  std::vector<std::pair<std::string, double>> backend_p50_us;  ///< per-backend match p50
};

double client_rate(const Samples& now, const Samples* prev, const std::string& key,
                   double dt) {
  if (prev == nullptr || dt <= 0.0) return 0.0;
  const double delta = sample_or(now, key, 0.0) - sample_or(*prev, key, 0.0);
  return delta > 0.0 ? delta / dt : 0.0;
}

Derived derive(const Sample& cur, const Sample* prev) {
  Derived d;
  const Samples& m = cur.metrics;
  d.requests_total = sample_or(m, "evoforecast_serve_requests_total", 0.0);
  d.errors = sample_or(m, "evoforecast_serve_errors_total", 0.0);
  d.slow_requests = sample_or(m, "evoforecast_serve_slow_requests_total", 0.0);
  d.window_seconds = sample_or(m, "evoforecast_window_seconds", 0.0);
  d.server_window = d.window_seconds > 0.0;

  const double hits = sample_or(m, "evoforecast_serve_cache_hits_total", 0.0);
  const double misses = sample_or(m, "evoforecast_serve_cache_misses_total", 0.0);
  d.cache_hit_rate = hits + misses > 0.0 ? hits / (hits + misses) : 0.0;

  if (d.server_window) {
    d.qps = sample_or(m, "evoforecast_serve_requests_window_rate", 0.0);
    d.p50_us = sample_or(m, "evoforecast_serve_request_us_window{q=\"0.50\"}", 0.0);
    d.p90_us = sample_or(m, "evoforecast_serve_request_us_window{q=\"0.90\"}", 0.0);
    d.p99_us = sample_or(m, "evoforecast_serve_request_us_window{q=\"0.99\"}", 0.0);
    d.abstain_per_sec = sample_or(m, "evoforecast_serve_abstentions_window_rate", 0.0);
  } else {
    const Samples* pm = prev != nullptr ? &prev->metrics : nullptr;
    d.qps = client_rate(m, pm, "evoforecast_serve_requests_total", cur.poll_seconds);
    d.abstain_per_sec =
        client_rate(m, pm, "evoforecast_serve_abstentions_total", cur.poll_seconds);
    const Buckets now_b = histogram_buckets(m, "evoforecast_serve_request_us");
    Buckets prev_b;
    if (pm != nullptr) prev_b = histogram_buckets(*pm, "evoforecast_serve_request_us");
    const Buckets* pb = prev_b.counts.empty() ? nullptr : &prev_b;
    d.p50_us = quantile(now_b, pb, 0.50);
    d.p90_us = quantile(now_b, pb, 0.90);
    d.p99_us = quantile(now_b, pb, 0.99);
  }

  for (const char* backend : {"scalar", "soa", "soa_prefilter"}) {
    const std::string base = std::string("evoforecast_match_") + backend + "_us";
    if (const auto p50 = sample(m, base + "_window{q=\"0.50\"}")) {
      d.backend_p50_us.emplace_back(backend, *p50);
    } else {
      const Buckets b = histogram_buckets(m, base);
      if (!b.counts.empty() && b.counts.back() > 0.0) {
        d.backend_p50_us.emplace_back(backend, quantile(b, nullptr, 0.50));
      }
    }
  }
  return d;
}

#if EFSTAT_HAVE_SOCKETS

Sample poll(Client& client) {
  Sample out;
  const auto metrics_line = client.request("{\"cmd\":\"metrics\"}");
  if (!metrics_line) {
    out.error = "no response to metrics verb (server down?)";
    return out;
  }
  std::string parse_error;
  const auto metrics_doc = ef::serve::json::parse(*metrics_line, parse_error);
  const auto* metrics_obj = metrics_doc ? metrics_doc->as_object() : nullptr;
  if (!metrics_obj) {
    out.error = "bad metrics response: " + parse_error;
    return out;
  }
  const auto expo_it = metrics_obj->find("exposition");
  const std::string* expo =
      expo_it != metrics_obj->end() ? expo_it->second.as_string() : nullptr;
  if (!expo) {
    out.error = "metrics response lacks \"exposition\"";
    return out;
  }
  out.metrics = parse_prometheus(*expo);

  if (const auto models_line = client.request("{\"cmd\":\"models\"}")) {
    if (const auto models_doc = ef::serve::json::parse(*models_line, parse_error)) {
      if (const auto* obj = models_doc->as_object()) {
        const auto it = obj->find("models");
        if (it != obj->end()) {
          if (const auto* array = it->second.as_array()) {
            for (const auto& item : *array) {
              const auto* model = item.as_object();
              if (!model) continue;
              ModelRow row;
              for (const auto& [key, value] : *model) {
                if (key == "name" && value.as_string()) row.name = *value.as_string();
                if (key == "version" && value.as_number()) row.version = *value.as_number();
                if (key == "rules" && value.as_number()) row.rules = *value.as_number();
                if (key == "window" && value.as_number()) row.window = *value.as_number();
              }
              out.models.push_back(std::move(row));
            }
          }
        }
      }
    }
  }
  // Forecast quality (best-effort: older servers answer unknown_cmd, and a
  // disabled tracker reports enabled:false — both leave the panel empty).
  if (const auto quality_line = client.request("{\"cmd\":\"quality\"}")) {
    if (const auto quality_doc = ef::serve::json::parse(*quality_line, parse_error)) {
      if (const auto* obj = quality_doc->as_object()) {
        const auto armed_it = obj->find("armed");
        if (armed_it != obj->end() && armed_it->second.as_bool()) {
          out.quality_armed = *armed_it->second.as_bool();
        }
        const auto it = obj->find("models");
        const auto* array = it != obj->end() ? it->second.as_array() : nullptr;
        if (array != nullptr) {
          for (const auto& item : *array) {
            const auto* entry = item.as_object();
            if (!entry) continue;
            QualityRow row;
            for (const auto& [key, value] : *entry) {
              if (key == "model" && value.as_string()) row.model = *value.as_string();
              if (key == "tick" && value.as_number()) row.tick = *value.as_number();
              if (key == "pending" && value.as_number()) row.pending = *value.as_number();
              if (key == "window" && value.as_number()) row.window = *value.as_number();
              if (key == "rmse" && value.as_number()) {
                row.rmse = *value.as_number();
                row.has_rmse = true;
              }
              if (key == "mae" && value.as_number()) row.mae = *value.as_number();
              if (key == "coverage" && value.as_number()) {
                row.coverage = *value.as_number();
                row.has_coverage = true;
              }
              if (key == "abstain_share" && value.as_number()) {
                row.abstain_share = *value.as_number();
              }
              if (key == "drift" && value.as_object()) {
                for (const auto& [dk, dv] : *value.as_object()) {
                  if (dk == "drifted" && dv.as_bool()) row.drifted = *dv.as_bool();
                  if (dk == "detections" && dv.as_number()) {
                    row.drift_detections = *dv.as_number();
                  }
                }
              }
            }
            out.quality.push_back(std::move(row));
          }
        }
      }
    }
  }
  out.ok = true;
  return out;
}

/// Per-request stage durations accumulated from one trace's spans.
struct TraceRow {
  std::uint64_t trace_id = 0;
  double ts = 0.0;        ///< earliest span start (µs, server timeline clock)
  double total_us = 0.0;  ///< serve.request root span duration
  double queue_us = 0.0;
  double batch_us = 0.0;
  double cache_us = 0.0;
  double match_us = 0.0;
  double respond_us = 0.0;
  double slow_us = 0.0;  ///< > 0 when the server kept it as a slow exemplar
  std::size_t spans = 0;
};

/// --trace mode: one {"cmd":"trace"} round trip, then a per-request latency
/// breakdown of the exported timeline. Where the total exceeds the sum of
/// stages, the remainder is service-side validation/lookup overhead.
int run_trace_mode(Client& client, std::size_t max_rows) {
  const auto line = client.request("{\"cmd\":\"trace\"}");
  if (!line) {
    std::fprintf(stderr, "efstat: no response to trace verb (server down?)\n");
    return 1;
  }
  std::string parse_error;
  const auto doc = ef::serve::json::parse(*line, parse_error);
  const auto* root = doc ? doc->as_object() : nullptr;
  if (!root) {
    std::fprintf(stderr, "efstat: bad trace response: %s\n", parse_error.c_str());
    return 1;
  }
  const auto enabled_it = root->find("enabled");
  const bool* enabled =
      enabled_it != root->end() ? enabled_it->second.as_bool() : nullptr;
  const auto sample_it = root->find("sample");
  const double* rate = sample_it != root->end() ? sample_it->second.as_number() : nullptr;
  const auto trace_it = root->find("trace");
  const auto* trace = trace_it != root->end() ? trace_it->second.as_object() : nullptr;
  const auto events_it = trace ? trace->find("traceEvents") : ef::serve::json::Object::const_iterator{};
  const auto* events =
      trace && events_it != trace->end() ? events_it->second.as_array() : nullptr;
  if (!events) {
    std::fprintf(stderr, "efstat: trace response lacks traceEvents\n");
    return 1;
  }

  std::map<std::uint64_t, TraceRow> rows;
  for (const auto& item : *events) {
    const auto* event = item.as_object();
    if (!event) continue;
    const std::string* name = nullptr;
    const std::string* ph = nullptr;
    double ts = 0.0;
    double dur = 0.0;
    const ef::serve::json::Object* args = nullptr;
    for (const auto& [key, value] : *event) {
      if (key == "name") name = value.as_string();
      if (key == "ph") ph = value.as_string();
      if (key == "ts" && value.as_number()) ts = *value.as_number();
      if (key == "dur" && value.as_number()) dur = *value.as_number();
      if (key == "args") args = value.as_object();
    }
    if (!name || !args) continue;
    double trace_id = 0.0;
    double slow_us = 0.0;
    for (const auto& [key, value] : *args) {
      if (key == "trace_id" && value.as_number()) trace_id = *value.as_number();
      if (key == "slow_us" && value.as_number()) slow_us = *value.as_number();
    }
    if (trace_id <= 0.0) continue;
    TraceRow& row = rows[static_cast<std::uint64_t>(trace_id)];
    row.trace_id = static_cast<std::uint64_t>(trace_id);
    if (slow_us > 0.0) row.slow_us = slow_us;
    if (!ph || *ph != "X") continue;  // instant markers carry no durations
    ++row.spans;
    if (row.spans == 1 || ts < row.ts) row.ts = ts;
    if (*name == "serve.request") row.total_us += dur;
    else if (*name == "serve.queue") row.queue_us += dur;
    else if (*name == "serve.batch") row.batch_us += dur;
    else if (*name == "serve.cache") row.cache_us += dur;
    else if (*name == "serve.match") row.match_us += dur;
    else if (*name == "serve.respond") row.respond_us += dur;
  }

  std::printf("efstat trace — %zu traced request%s (tracing %s, sample %g)\n",
              rows.size(), rows.size() == 1 ? "" : "s",
              enabled && *enabled ? "on" : "off", rate ? *rate : 0.0);
  if (rows.empty()) {
    std::printf("  no spans captured — arm tracing with --trace-sample/"
                "EVOFORECAST_TRACE_SAMPLE and send requests\n");
    return 0;
  }

  // Newest requests first, bounded at max_rows.
  std::vector<const TraceRow*> order;
  order.reserve(rows.size());
  for (const auto& [id, row] : rows) {
    if (row.total_us > 0.0) order.push_back(&row);
  }
  std::sort(order.begin(), order.end(),
            [](const TraceRow* a, const TraceRow* b) { return a->ts > b->ts; });
  const std::size_t shown = std::min(order.size(), max_rows);

  std::printf("  %-12s %9s %9s %9s %9s %9s %9s  %s\n", "trace", "total", "queue",
              "batch", "cache", "match", "respond", "flags");
  TraceRow mean;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const TraceRow& row = *order[i];
    mean.total_us += row.total_us;
    mean.queue_us += row.queue_us;
    mean.batch_us += row.batch_us;
    mean.cache_us += row.cache_us;
    mean.match_us += row.match_us;
    mean.respond_us += row.respond_us;
    if (i >= shown) continue;
    std::printf("  %-12llu %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f  %s\n",
                static_cast<unsigned long long>(row.trace_id), row.total_us,
                row.queue_us, row.batch_us, row.cache_us, row.match_us, row.respond_us,
                row.slow_us > 0.0 ? "slow" : "");
  }
  const auto n = static_cast<double>(order.size());
  if (n > 0.0) {
    std::printf("  %-12s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f  (us, mean of %zu)\n",
                "mean", mean.total_us / n, mean.queue_us / n, mean.batch_us / n,
                mean.cache_us / n, mean.match_us / n, mean.respond_us / n,
                order.size());
  }
  if (order.size() > shown) {
    std::printf("  ... %zu more (raise --trace-rows)\n", order.size() - shown);
  }
  std::fflush(stdout);
  return 0;
}

#endif  // EFSTAT_HAVE_SOCKETS

void render_dashboard(const Sample& cur, const Derived& d, const std::string& target,
                      bool clear_screen) {
  if (clear_screen) std::fputs("\x1b[2J\x1b[H", stdout);
  std::printf("efstat — %s%s\n", target.c_str(),
              d.server_window ? "" : "  (warming up: client-side rates)");
  std::printf("  window %.0fs\n", d.server_window ? d.window_seconds : cur.poll_seconds);
  std::printf("\n");
  std::printf("  qps        %10.1f    requests total %12.0f\n", d.qps, d.requests_total);
  std::printf("  latency us p50 %8.0f    p90 %8.0f    p99 %8.0f\n", d.p50_us, d.p90_us,
              d.p99_us);
  std::printf("  cache hit  %9.1f%%    abstain/s %10.2f\n", d.cache_hit_rate * 100.0,
              d.abstain_per_sec);
  std::printf("  errors     %10.0f    slow requests %13.0f\n", d.errors, d.slow_requests);
  if (!d.backend_p50_us.empty()) {
    std::printf("\n  match backends (p50 us):");
    for (const auto& [name, p50] : d.backend_p50_us) {
      std::printf("  %s %.1f", name.c_str(), p50);
    }
    std::printf("\n");
  }
  if (!cur.models.empty()) {
    std::printf("\n  %-20s %8s %8s %8s\n", "model", "version", "rules", "window");
    for (const ModelRow& row : cur.models) {
      std::printf("  %-20s %8.0f %8.0f %8.0f\n", row.name.c_str(), row.version, row.rules,
                  row.window);
    }
  }
  if (!cur.quality.empty()) {
    std::printf("\n  forecast quality%s\n",
                cur.quality_armed ? "" : "  (not armed: no actuals observed yet)");
    std::printf("  %-20s %8s %8s %8s %8s %8s %8s %8s  %s\n", "model", "tick", "pending",
                "scored", "rmse", "mae", "cover%", "abstain%", "drift");
    for (const QualityRow& row : cur.quality) {
      char rmse[24] = "-";
      char mae[24] = "-";
      char cover[24] = "-";
      if (row.has_rmse) {
        std::snprintf(rmse, sizeof rmse, "%.4g", row.rmse);
        std::snprintf(mae, sizeof mae, "%.4g", row.mae);
      }
      if (row.has_coverage) std::snprintf(cover, sizeof cover, "%.1f", row.coverage * 100.0);
      std::printf("  %-20s %8.0f %8.0f %8.0f %8s %8s %8s %8.1f  %s\n", row.model.c_str(),
                  row.tick, row.pending, row.window, rmse, mae, cover,
                  row.abstain_share * 100.0,
                  row.drifted ? "DRIFT"
                              : (row.drift_detections > 0 ? "cleared" : "ok"));
    }
  }
  std::fflush(stdout);
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void render_json(const Sample& cur, const Derived& d) {
  std::printf("{\"qps\":%.6g,\"p50_us\":%.6g,\"p90_us\":%.6g,\"p99_us\":%.6g,"
              "\"cache_hit_rate\":%.6g,\"abstain_per_sec\":%.6g,\"errors\":%.0f,"
              "\"slow_requests\":%.0f,\"requests_total\":%.0f,\"window_seconds\":%.6g,"
              "\"server_window\":%s,\"models\":[",
              d.qps, d.p50_us, d.p90_us, d.p99_us, d.cache_hit_rate, d.abstain_per_sec,
              d.errors, d.slow_requests, d.requests_total, d.window_seconds,
              d.server_window ? "true" : "false");
  for (std::size_t i = 0; i < cur.models.size(); ++i) {
    const ModelRow& row = cur.models[i];
    std::printf("%s{\"name\":\"%s\",\"version\":%.0f,\"rules\":%.0f,\"window\":%.0f}",
                i == 0 ? "" : ",", json_escape(row.name).c_str(), row.version, row.rules,
                row.window);
  }
  std::printf("],\"quality_armed\":%s,\"quality\":[",
              cur.quality_armed ? "true" : "false");
  for (std::size_t i = 0; i < cur.quality.size(); ++i) {
    const QualityRow& row = cur.quality[i];
    std::printf("%s{\"model\":\"%s\",\"tick\":%.0f,\"pending\":%.0f,\"window\":%.0f",
                i == 0 ? "" : ",", json_escape(row.model).c_str(), row.tick, row.pending,
                row.window);
    if (row.has_rmse) std::printf(",\"rmse\":%.6g,\"mae\":%.6g", row.rmse, row.mae);
    if (row.has_coverage) std::printf(",\"coverage\":%.6g", row.coverage);
    std::printf(",\"abstain_share\":%.6g,\"drifted\":%s,\"drift_detections\":%.0f}",
                row.abstain_share, row.drifted ? "true" : "false", row.drift_detections);
  }
  std::printf("]}\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
#if !EFSTAT_HAVE_SOCKETS
  (void)argc;
  (void)argv;
  std::fprintf(stderr, "efstat: no socket support on this platform\n");
  return 1;
#else
  const ef::util::Cli cli(argc, argv);
  const std::string host = cli.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 7777));
  const auto interval_ms = cli.get_int("interval-ms", 1000);
  const bool once = cli.get_bool("once");
  const bool as_json = cli.get_bool("json");
  const std::string target = host + ":" + std::to_string(port);

  Client client(host, port);
  if (cli.get_bool("trace")) {
    const auto rows = static_cast<std::size_t>(cli.get_int("trace-rows", 20));
    return run_trace_mode(client, rows);
  }
  Sample prev;
  bool have_prev = false;
  auto prev_at = std::chrono::steady_clock::now();
  for (;;) {
    Sample cur = poll(client);
    const auto now = std::chrono::steady_clock::now();
    cur.poll_seconds = std::chrono::duration<double>(now - prev_at).count();
    prev_at = now;
    if (!cur.ok) {
      std::fprintf(stderr, "efstat: %s\n", cur.error.c_str());
      if (once) return 1;
    } else {
      const Derived d = derive(cur, have_prev ? &prev : nullptr);
      if (as_json) {
        render_json(cur, d);
      } else {
        render_dashboard(cur, d, target, /*clear_screen=*/!once);
      }
      prev = std::move(cur);
      have_prev = true;
    }
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
#endif
}
