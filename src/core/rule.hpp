// rule.hpp — a prediction rule: the individual of the Michigan population.
//
// Paper §3.1: a rule R = (C_R, P_R) where the conditional part C_R is D
// interval genes and the predicting part P_R = (p_R, e_R) is *derived* from
// the training data (linear regression over matched windows), never evolved
// directly. The flat encoding
//   (LL_1, UL_1, …, LL_D, UL_D, p, e)
// with '*' for wildcards is reproduced by encode()/parse() for
// serialisation and debuggability.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/interval.hpp"
#include "core/regression.hpp"

namespace ef::core {

/// Derived predicting part of a rule (paper's (p, e) plus the fitted
/// hyperplane and bookkeeping used by fitness and crowding).
struct PredictingPart {
  LinearFit fit;            ///< hyperplane; fit.max_abs_residual is e_R
  std::size_t matches = 0;  ///< N_R: matched training windows
  double fitness = 0.0;     ///< cached fitness value

  /// Paper's scalar prediction value p_R (mean regression output over the
  /// matched set) — the phenotype coordinate used by crowding replacement.
  [[nodiscard]] double prediction() const noexcept { return fit.mean_prediction; }
  /// Paper's expected error e_R.
  [[nodiscard]] double error() const noexcept { return fit.max_abs_residual; }
};

/// One rule. Invariant: genes().size() == D of the dataset it is evaluated
/// against; the predicting part is present only after evaluation.
class Rule {
 public:
  Rule() = default;
  explicit Rule(std::vector<Interval> genes) : genes_(std::move(genes)) {}

  [[nodiscard]] std::size_t window() const noexcept { return genes_.size(); }
  [[nodiscard]] const std::vector<Interval>& genes() const noexcept { return genes_; }
  [[nodiscard]] std::vector<Interval>& genes() noexcept { return genes_; }

  /// Does this rule's conditional part accept the window? (paper: X_i fits C_R)
  [[nodiscard]] bool matches(std::span<const double> window_values) const noexcept {
    if (window_values.size() != genes_.size()) return false;
    for (std::size_t i = 0; i < genes_.size(); ++i) {
      if (!genes_[i].contains(window_values[i])) return false;
    }
    return true;
  }

  /// Predicting part; empty until the rule has been evaluated.
  [[nodiscard]] const std::optional<PredictingPart>& predicting() const noexcept {
    return predicting_;
  }
  void set_predicting(PredictingPart part) { predicting_ = std::move(part); }
  void clear_predicting() noexcept { predicting_.reset(); }

  /// Cached fitness; rules not yet evaluated report -infinity so they always
  /// lose comparisons (and are visibly wrong in traces).
  [[nodiscard]] double fitness() const noexcept;

  /// Forecast for a matching window: the fitted hyperplane evaluated at it.
  /// Precondition: predicting part present (throws std::logic_error if not).
  [[nodiscard]] double forecast(std::span<const double> window_values) const;

  /// Number of non-wildcard genes (specificity; used in telemetry).
  [[nodiscard]] std::size_t specificity() const noexcept;

  /// Paper-style flat encoding, e.g. "(50, 100, *, *, 1, 100 | p=33, e=5)".
  [[nodiscard]] std::string encode() const;

  /// Parse the conditional part of an encode()d string back into a rule
  /// (the derived predicting part is *not* restored — re-evaluate instead).
  /// Throws std::invalid_argument on malformed input.
  [[nodiscard]] static Rule parse(const std::string& text);

 private:
  std::vector<Interval> genes_;
  std::optional<PredictingPart> predicting_;
};

}  // namespace ef::core
