// Tests for the extended forecast metrics (sMAPE, MASE) and the synthetic
// test-signal generators.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "series/analysis.hpp"
#include "series/metrics.hpp"
#include "series/synthetic.hpp"

namespace {

namespace m = ef::series;

// ---- sMAPE ------------------------------------------------------------------

TEST(Smape, PerfectForecastIsZero) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(m::smape(a, a), 0.0);
}

TEST(Smape, HandComputed) {
  const std::vector<double> a{10.0};
  const std::vector<double> p{30.0};
  // 200 · |20| / (10+30) = 100.
  EXPECT_DOUBLE_EQ(m::smape(a, p), 100.0);
}

TEST(Smape, BothZeroContributesNothing) {
  const std::vector<double> a{0.0, 10.0};
  const std::vector<double> p{0.0, 10.0};
  EXPECT_DOUBLE_EQ(m::smape(a, p), 0.0);
}

TEST(Smape, BoundedBy200) {
  const std::vector<double> a{1.0, 5.0, 0.1};
  const std::vector<double> p{-1.0, -5.0, -0.1};  // maximal disagreement
  EXPECT_DOUBLE_EQ(m::smape(a, p), 200.0);
}

TEST(Smape, SizeMismatchThrows) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> p{1.0};
  EXPECT_THROW((void)m::smape(a, p), std::invalid_argument);
}

// ---- MASE -------------------------------------------------------------------

TEST(Mase, NaivePersistenceScoresAboutOne) {
  // Forecasting a random walk with persistence: MASE ≈ 1 by construction.
  const auto train = m::generate_ar(500, {{1.0}, 1.0, 0.0, 100, 5});
  const auto test = m::generate_ar(300, {{1.0}, 1.0, 0.0, 100, 6});
  std::vector<double> actual;
  std::vector<double> naive;
  for (std::size_t i = 1; i < test.size(); ++i) {
    actual.push_back(test[i]);
    naive.push_back(test[i - 1]);
  }
  const double score = m::mase(actual, naive, train.values());
  EXPECT_GT(score, 0.7);
  EXPECT_LT(score, 1.4);
}

TEST(Mase, PerfectForecastIsZero) {
  const std::vector<double> train{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> a{5.0, 6.0};
  EXPECT_DOUBLE_EQ(m::mase(a, a, train), 0.0);
}

TEST(Mase, HandComputed) {
  // Train diffs: |1|,|1| → naive MAE 1. Forecast MAE = 2 → MASE 2.
  const std::vector<double> train{0.0, 1.0, 2.0};
  const std::vector<double> a{10.0};
  const std::vector<double> p{12.0};
  EXPECT_DOUBLE_EQ(m::mase(a, p, train), 2.0);
}

TEST(Mase, ConstantTrainThrows) {
  const std::vector<double> train{3.0, 3.0, 3.0};
  const std::vector<double> a{1.0};
  EXPECT_THROW((void)m::mase(a, a, train), std::invalid_argument);
}

TEST(Mase, ShortTrainThrows) {
  const std::vector<double> train{3.0};
  const std::vector<double> a{1.0};
  EXPECT_THROW((void)m::mase(a, a, train), std::invalid_argument);
}

// ---- synthetic generators ----------------------------------------------------

TEST(GenerateSine, ExactWithoutNoise) {
  m::SineParams params;
  params.amplitude = 2.0;
  params.period = 8.0;
  params.offset = 1.0;
  const auto s = m::generate_sine(64, params);
  EXPECT_NEAR(s[0], 1.0, 1e-12);               // sin(0) = 0 → offset
  EXPECT_NEAR(s[2], 3.0, 1e-12);               // quarter period → +amplitude
  EXPECT_NEAR(s[6], -1.0, 1e-12);              // three quarters → −amplitude
  EXPECT_NEAR(s.mean(), 1.0, 1e-9);            // whole periods → offset
}

TEST(GenerateSine, DetectedPeriodMatches) {
  m::SineParams params;
  params.period = 17.0;
  params.noise_sd = 0.05;
  const auto s = m::generate_sine(2000, params);
  const auto est = m::detect_period(s, 3, 60);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->period, 17u);
}

TEST(GenerateSine, Validation) {
  EXPECT_THROW((void)m::generate_sine(0), std::invalid_argument);
  m::SineParams bad;
  bad.period = 0.0;
  EXPECT_THROW((void)m::generate_sine(10, bad), std::invalid_argument);
  bad = {};
  bad.noise_sd = -1.0;
  EXPECT_THROW((void)m::generate_sine(10, bad), std::invalid_argument);
}

TEST(GenerateAr, Ar1AutocorrelationMatchesPhi) {
  m::ArParams params;
  params.phi = {0.7};
  params.seed = 11;
  const auto s = m::generate_ar(30000, params);
  EXPECT_NEAR(m::autocorrelation(s, 1), 0.7, 0.02);
}

TEST(GenerateAr, WhiteNoiseWhenNoCoefficients) {
  m::ArParams params;
  params.phi = {};
  const auto s = m::generate_ar(20000, params);
  EXPECT_NEAR(m::autocorrelation(s, 1), 0.0, 0.03);
  EXPECT_NEAR(s.variance(), 1.0, 0.05);
}

TEST(GenerateAr, OffsetShiftsMean) {
  m::ArParams params;
  params.offset = 50.0;
  const auto s = m::generate_ar(20000, params);
  EXPECT_NEAR(s.mean(), 50.0, 1.0);
}

TEST(GenerateAr, Deterministic) {
  const auto a = m::generate_ar(100);
  const auto b = m::generate_ar(100);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(GenerateRegimeSwitch, AmplitudeVariesAcrossSeries) {
  m::RegimeSwitchParams params;
  params.mean_dwell = 200.0;
  const auto s = m::generate_regime_switch(4000, params);
  // Rolling amplitude (max−min over 50-sample blocks) must differ strongly
  // between the calmest and wildest blocks: evidence of regime switching.
  double min_amp = 1e300;
  double max_amp = 0.0;
  for (std::size_t b = 0; b + 50 <= s.size(); b += 50) {
    double lo = s[b];
    double hi = s[b];
    for (std::size_t i = b; i < b + 50; ++i) {
      lo = std::min(lo, s[i]);
      hi = std::max(hi, s[i]);
    }
    min_amp = std::min(min_amp, hi - lo);
    max_amp = std::max(max_amp, hi - lo);
  }
  EXPECT_GT(max_amp, 1.8 * min_amp);
}

TEST(GenerateRegimeSwitch, Validation) {
  EXPECT_THROW((void)m::generate_regime_switch(0), std::invalid_argument);
  m::RegimeSwitchParams bad;
  bad.regimes.clear();
  EXPECT_THROW((void)m::generate_regime_switch(10, bad), std::invalid_argument);
  bad = {};
  bad.mean_dwell = 1.0;
  EXPECT_THROW((void)m::generate_regime_switch(10, bad), std::invalid_argument);
}

}  // namespace
