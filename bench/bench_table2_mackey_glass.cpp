// bench_table2_mackey_glass — reproduces Table 2: Mackey-Glass forecasting
// at horizons 50 and 85 (NMSE over the covered subset), against our
// re-implementations of the paper's quoted comparators: MRAN (τ = 50 row)
// and RAN (τ = 85 row). Data split follows the paper exactly: 5 000 samples,
// train [3500, 4499], test [4500, 5000), normalised to [0, 1].
//
// The experiment logic lives in src/experiments (shared with the
// shape-regression tests); this binary is the CLI + table printer.
#include <cstdio>

#include "bench_common.hpp"
#include "experiments/experiments.hpp"
#include "util/cli.hpp"
#include "util/running_stats.hpp"

namespace {

struct PaperRow {
  std::size_t horizon;
  double coverage_percent;  // paper "Perc. pred."
  double error_rs;          // paper rule-system NMSE
  double error_mran;        // −1 = not reported for this horizon
  double error_ran;
};

constexpr PaperRow kPaperTable2[] = {
    {50, 78.9, 0.025, 0.040, -1.0},
    {85, 78.2, 0.046, -1.0, 0.050},
};

}  // namespace

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");

  ef::experiments::MackeyGlassRowConfig base;
  base.window = static_cast<std::size_t>(cli.get_int("window", 4));
  base.stride = static_cast<std::size_t>(cli.get_int("stride", 6));
  base.generations =
      static_cast<std::size_t>(cli.get_int("generations", full ? 75000 : 15000));
  base.population = static_cast<std::size_t>(cli.get_int("population", 100));
  base.emax = cli.get_double("emax", 0.14);
  // Paper reports ≈78-79 % coverage: the method deliberately abstains on the
  // hardest ~20 % — target that operating point, not 97 %.
  base.coverage_target_percent = cli.get_double("coverage-target", 78.0);
  base.max_executions = full ? 6 : 4;
  base.rbf_passes = full ? 4 : 2;
  const auto seed_base = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  // --seeds N averages the rule system over N independent seeds (mean shown,
  // sd printed underneath) — the paper's numbers are single runs.
  const auto n_seeds = static_cast<std::size_t>(cli.get_int("seeds", 1));
  // --horizons 1,24 restricts the sweep (useful for --full single rows).
  const auto horizon_filter = ef::bench::parse_size_list(cli.get_string("horizons", ""));

  std::printf("Table 2 reproduction — Mackey-Glass (a=0.2, b=0.1, lambda=17)\n");
  std::printf(
      "train=[3500,4499], test=[4500,5000), D=%zu (stride %zu), pop=%zu, generations=%zu\n",
      base.window, base.stride, base.population, base.generations);
  ef::bench::print_rule('=');

  std::printf("%4s | %7s %9s %7s | %9s %9s | %7s %9s %9s %9s\n", "tau", "cov%",
              "nmseRS", "rules", "nmseMRAN", "nmseRAN", "papCov%", "papRS", "papMRAN",
              "papRAN");
  ef::bench::print_rule();

  for (const PaperRow& row : kPaperTable2) {
    if (!ef::bench::selected(horizon_filter, row.horizon)) continue;
    ef::util::RunningStats coverage_stats;
    ef::util::RunningStats nmse_stats;
    ef::experiments::MackeyGlassRowResult last{};
    for (std::size_t s = 0; s < n_seeds; ++s) {
      ef::experiments::MackeyGlassRowConfig cfg = base;
      cfg.horizon = row.horizon;
      cfg.seed = seed_base + 1000 * s;
      last = ef::experiments::run_mackey_glass_row(cfg);
      coverage_stats.add(last.rs.coverage_percent);
      nmse_stats.add(last.rs.nmse);
    }

    std::printf("%4zu | %6.1f%% %9.4f %7zu | %9.4f %9.4f | %6.1f%% %9.3f ", row.horizon,
                coverage_stats.mean(), nmse_stats.mean(), last.rs.rules, last.nmse_mran,
                last.nmse_ran, row.coverage_percent, row.error_rs);
    if (row.error_mran >= 0.0) {
      std::printf("%9.3f ", row.error_mran);
    } else {
      std::printf("%9s ", "-");
    }
    if (row.error_ran >= 0.0) {
      std::printf("%9.3f\n", row.error_ran);
    } else {
      std::printf("%9s\n", "-");
    }
    if (n_seeds > 1) {
      std::printf("     | ±%5.1f%% ±%8.4f   (sd over %zu seeds)\n",
                  coverage_stats.stddev(), nmse_stats.stddev(), n_seeds);
    }
    std::fflush(stdout);
  }

  ef::bench::print_rule();
  std::printf(
      "Shape checks vs the paper: (1) coverage settles near the ~78%% the paper\n"
      "reports (abstention on the hardest windows); (2) the rule system's covered-\n"
      "subset NMSE undercuts the RBF networks at both horizons; (3) tau=85 is harder\n"
      "than tau=50 for every model. Comparator caveat: RAN/MRAN are budget-sensitive —\n"
      "see EXPERIMENTS.md.\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
