// serve/options.hpp — the one aggregate configuring the serving stack.
//
// Pre-redesign, efserve grew a flag per knob and plumbed each one through a
// different struct (ServiceConfig here, ServerConfig there, a Timeline call
// in main). ServeOptions replaces all of that: one aggregate covering the
// service pipeline (cache, batcher, limits, slow-request threshold, trace
// sampling) and the reactor transport (bind address, reactor threads,
// framing and pipelining limits). ForecastService consumes the service
// section; Reactor reads the transport section off the service it fronts —
// a single designated-initializer literal configures the whole stack:
//
//   ForecastService service(store, {.port = 7777, .reactor_threads = 4});
//   Reactor reactor(service);
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/batcher.hpp"
#include "serve/quality.hpp"
#include "serve/window_cache.hpp"

namespace ef::serve {

struct ServeOptions {
  // --- service pipeline ---------------------------------------------------
  CacheConfig cache;           ///< capacity / shards / quantization grid
  BatcherConfig batcher;       ///< micro-batch size cap + coalescing delay
  QualityOptions quality;      ///< prediction ledger / accuracy / drift
  bool enable_cache = true;
  bool enable_batcher = true;  ///< off = predict inline (lowest latency, no coalescing)
  std::size_t max_window = 4096;
  std::size_t max_horizon = 1024;
  /// Requests slower than this emit a serve.slow_request event and bump the
  /// serve.slow_requests counter; <= 0 disables the check.
  double slow_request_us = 50000.0;
  /// Timeline trace sample rate. >= 0 overrides the environment-configured
  /// rate at service construction; the default -1 leaves it untouched.
  double trace_sample = -1.0;

  // --- reactor transport --------------------------------------------------
  std::string host = "127.0.0.1";
  std::uint16_t port = 7777;      ///< 0 = pick an ephemeral port (tests)
  /// Reactor (event-loop) threads; 0 = automatic (min(hardware, 4)). Each
  /// reactor owns its connections outright — shared-nothing after accept.
  std::size_t reactor_threads = 0;
  int backlog = 128;
  std::size_t max_line_bytes = 1 << 20;  ///< oversize request lines are rejected
  /// Cap on pipelined requests in flight per connection; further lines stay
  /// in the read buffer (natural backpressure) until responses drain.
  std::size_t max_pipeline = 1024;
  /// Test hook: SO_SNDBUF for accepted sockets (0 = OS default). Tiny
  /// values force the partial-write/EPOLLOUT path deterministically.
  int sndbuf_bytes = 0;
  /// Graceful-drain budget: on stop(), connections get this long to finish
  /// in-flight pipelined requests and flush before being force-closed.
  int drain_timeout_ms = 5000;
};

}  // namespace ef::serve
