// Tests for the warm-start engine constructor and extend_rule_system (the
// online-update extension), plus RuleSystem::describe.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/evolution.hpp"
#include "core/rule_system.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::EvolutionConfig;
using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystemConfig;
using ef::core::SteadyStateEngine;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

TimeSeries regime_series(std::size_t n, double level, std::uint64_t seed) {
  ef::util::Rng rng(seed);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = level + std::sin(static_cast<double>(i) * 0.2) + rng.normal(0.0, 0.03);
  }
  return TimeSeries(std::move(v));
}

EvolutionConfig quick_config() {
  EvolutionConfig cfg;
  cfg.population_size = 15;
  cfg.generations = 300;
  cfg.emax = 0.3;
  cfg.seed = 6;
  return cfg;
}

TEST(WarmStart, SeedPopulationSurvivesAndIsReevaluated) {
  const TimeSeries s = regime_series(400, 0.0, 1);
  const WindowDataset data(s, 3, 1);

  // Seeds: full-range rules (match everything) — recognisable after trim.
  std::vector<Rule> seeds;
  for (int i = 0; i < 5; ++i) {
    seeds.emplace_back(std::vector<Interval>(3, Interval(data.value_min(), data.value_max())));
  }
  SteadyStateEngine engine(data, quick_config(), std::move(seeds));
  EXPECT_EQ(engine.population().size(), 15u);  // topped up to population_size
  for (const Rule& r : engine.population()) {
    ASSERT_TRUE(r.predicting().has_value());  // everything (re)evaluated
  }
}

TEST(WarmStart, SurplusSeedsTrimmedToFittest) {
  const TimeSeries s = regime_series(400, 0.0, 2);
  const WindowDataset data(s, 3, 1);
  EvolutionConfig cfg = quick_config();
  cfg.population_size = 4;

  std::vector<Rule> seeds;
  // 3 full-range rules (high N_R → high fitness), 5 impossible rules (f_min).
  for (int i = 0; i < 3; ++i) {
    seeds.emplace_back(std::vector<Interval>(3, Interval(data.value_min(), data.value_max())));
  }
  for (int i = 0; i < 5; ++i) {
    seeds.emplace_back(std::vector<Interval>(3, Interval(99.0, 100.0)));
  }
  SteadyStateEngine engine(data, cfg, std::move(seeds));
  ASSERT_EQ(engine.population().size(), 4u);
  // The three matchers must have survived the trim (their fitness is higher).
  std::size_t matchers = 0;
  for (const Rule& r : engine.population()) {
    if (r.predicting()->matches > 0) ++matchers;
  }
  EXPECT_GE(matchers, 3u);
}

TEST(WarmStart, WrongWindowSeedsDropped) {
  const TimeSeries s = regime_series(400, 0.0, 3);
  const WindowDataset data(s, 3, 1);
  std::vector<Rule> seeds;
  seeds.emplace_back(std::vector<Interval>(7, Interval::wildcard()));  // D mismatch
  SteadyStateEngine engine(data, quick_config(), std::move(seeds));
  EXPECT_EQ(engine.population().size(), 15u);
  for (const Rule& r : engine.population()) EXPECT_EQ(r.window(), 3u);
}

TEST(ExtendRuleSystem, ImprovesAfterRegimeShift) {
  // Train on a slow low-amplitude oscillation, then the dynamics change
  // (faster, twice the amplitude): the old hyperplanes encode the wrong
  // recurrence, so whatever the old system still covers it predicts badly;
  // extending on the new data must fix it. (A pure *level* shift would NOT
  // break the rules — affine predicting parts are nearly shift-equivariant —
  // which is itself a nice property, asserted at the end.)
  const TimeSeries before = regime_series(500, 0.0, 4);
  const auto after = [] {
    ef::util::Rng rng(5);
    std::vector<double> v(500);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = 2.0 * std::sin(static_cast<double>(i) * 0.55) + rng.normal(0.0, 0.03);
    }
    return TimeSeries(std::move(v));
  }();
  const WindowDataset old_data(before, 3, 1);
  const WindowDataset new_data(after, 3, 1);

  RuleSystemConfig cfg;
  cfg.evolution = quick_config();
  cfg.evolution.generations = 600;
  cfg.max_executions = 2;
  cfg.coverage_target_percent = 90.0;

  const auto original = ef::core::train(old_data, {.config = cfg});

  const auto rmse_on = [&](const ef::core::RuleSystem& system) {
    const auto forecast = system.forecast_dataset(new_data);
    std::vector<double> actual;
    for (std::size_t i = 0; i < new_data.count(); ++i) actual.push_back(new_data.target(i));
    return ef::series::evaluate_partial(actual, forecast).rmse;
  };

  const double before_rmse = rmse_on(original.system);
  EXPECT_GT(before_rmse, 0.3);  // wrong recurrence: large errors where covered

  const auto extended = ef::core::extend_rule_system(original.system, new_data, cfg);
  EXPECT_GT(extended.train_coverage_percent, 80.0);
  EXPECT_FALSE(extended.system.empty());
  const double after_rmse = rmse_on(extended.system);
  EXPECT_LT(after_rmse, 0.5 * before_rmse);

  // Bonus property: a pure level shift barely hurts (affine rules travel).
  const TimeSeries shifted = regime_series(500, 2.0, 7);
  const WindowDataset shifted_data(shifted, 3, 1);
  const auto forecast = original.system.forecast_dataset(shifted_data);
  std::vector<double> actual;
  for (std::size_t i = 0; i < shifted_data.count(); ++i) {
    actual.push_back(shifted_data.target(i));
  }
  const auto report = ef::series::evaluate_partial(actual, forecast);
  if (report.covered > 20) {
    EXPECT_LT(report.rmse, 0.3);
  }
}

TEST(ExtendRuleSystem, KeepsCompetenceOnUnchangedData) {
  const TimeSeries s = regime_series(600, 0.0, 6);
  const WindowDataset data(s, 3, 1);
  RuleSystemConfig cfg;
  cfg.evolution = quick_config();
  cfg.max_executions = 1;
  cfg.coverage_target_percent = 100.0;

  const auto original = ef::core::train(data, {.config = cfg});
  const auto extended = ef::core::extend_rule_system(original.system, data, cfg);
  // Extending on the same data must not lose coverage (warm start +
  // better-only replacement can only hold or improve training fit).
  EXPECT_GE(extended.train_coverage_percent,
            original.train_coverage_percent - 5.0);
}

TEST(Describe, ListsRulesFitnessDescending) {
  ef::core::RuleSystem system;
  const auto make = [](double fitness) {
    Rule r({Interval(0, 1)});
    ef::core::PredictingPart part;
    part.fit.coeffs = {0.0, 1.0};
    part.fitness = fitness;
    part.matches = 3;
    r.set_predicting(part);
    return r;
  };
  system.add_rules({make(1.0), make(5.0), make(3.0)}, false, -10.0);

  std::ostringstream out;
  system.describe(out, 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("3 rules"), std::string::npos);
  // Fitness 5 appears before 3 before 1.
  const auto p5 = text.find("\t5\t");
  const auto p3 = text.find("\t3\t");
  ASSERT_NE(p5, std::string::npos);
  ASSERT_NE(p3, std::string::npos);
  EXPECT_LT(p5, p3);
}

TEST(Describe, TopNLimitsOutput) {
  ef::core::RuleSystem system;
  std::vector<Rule> rules;
  for (int i = 0; i < 20; ++i) {
    Rule r({Interval(0, 1)});
    ef::core::PredictingPart part;
    part.fit.coeffs = {0.0, 1.0};
    part.fitness = i;
    r.set_predicting(part);
    rules.push_back(std::move(r));
  }
  system.add_rules(std::move(rules), false, -10.0);
  std::ostringstream out;
  system.describe(out, 5);
  EXPECT_NE(out.str().find("showing 5"), std::string::npos);
}

}  // namespace
