// Tests for the comparator models (MLP, Elman, RAN, MRAN, AR, kNN): config
// validation, learnability on simple functions, and the Forecaster contract.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "baselines/ar.hpp"
#include "baselines/elman.hpp"
#include "baselines/knn.hpp"
#include "baselines/mlp.hpp"
#include "baselines/mran.hpp"
#include "baselines/ran.hpp"
#include "core/dataset.hpp"
#include "series/metrics.hpp"
#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

namespace bl = ef::baselines;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

TimeSeries sine_series(std::size_t n, double noise = 0.0, std::uint64_t seed = 1) {
  ef::util::Rng rng(seed);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 0.5 + 0.4 * std::sin(static_cast<double>(i) * 0.25) + rng.normal(0.0, noise);
  }
  return TimeSeries(std::move(v), "sine");
}

/// MSE of a fitted forecaster on a dataset.
double model_mse(const bl::Forecaster& model, const WindowDataset& data) {
  std::vector<double> actual;
  for (std::size_t i = 0; i < data.count(); ++i) actual.push_back(data.target(i));
  return ef::series::mse(actual, model.predict_all(data));
}

/// MSE of always predicting the training-target mean (skill floor).
double mean_predictor_mse(const WindowDataset& data) {
  double mean = 0.0;
  for (std::size_t i = 0; i < data.count(); ++i) mean += data.target(i);
  mean /= static_cast<double>(data.count());
  double acc = 0.0;
  for (std::size_t i = 0; i < data.count(); ++i) {
    acc += (data.target(i) - mean) * (data.target(i) - mean);
  }
  return acc / static_cast<double>(data.count());
}

// ---- config validation ------------------------------------------------------

TEST(BaselineConfigs, InvalidValuesThrow) {
  bl::MlpConfig mlp;
  mlp.learning_rate = 0.0;
  EXPECT_THROW(bl::Mlp{mlp}, std::invalid_argument);
  mlp = {};
  mlp.hidden = {0};
  EXPECT_THROW(bl::Mlp{mlp}, std::invalid_argument);
  mlp = {};
  mlp.momentum = 1.0;
  EXPECT_THROW(bl::Mlp{mlp}, std::invalid_argument);

  bl::ElmanConfig elman;
  elman.hidden = 0;
  EXPECT_THROW(bl::Elman{elman}, std::invalid_argument);

  bl::RanConfig ran;
  ran.delta_min = 0.5;
  ran.delta_max = 0.1;
  EXPECT_THROW(bl::Ran{ran}, std::invalid_argument);
  ran = {};
  ran.epsilon = -1.0;
  EXPECT_THROW(bl::Ran{ran}, std::invalid_argument);

  bl::MranConfig mran;
  mran.prune_window = 0;
  EXPECT_THROW(bl::Mran{mran}, std::invalid_argument);

  bl::KnnConfig knn;
  knn.k = 0;
  EXPECT_THROW(bl::Knn{knn}, std::invalid_argument);
}

TEST(BaselineContract, PredictBeforeFitThrows) {
  const std::vector<double> w{0.1, 0.2, 0.3, 0.4};
  EXPECT_THROW((void)bl::Mlp{}.predict(w), std::logic_error);
  EXPECT_THROW((void)bl::Elman{}.predict(w), std::logic_error);
  EXPECT_THROW((void)bl::Ran{}.predict(w), std::logic_error);
  EXPECT_THROW((void)bl::Mran{}.predict(w), std::logic_error);
  EXPECT_THROW((void)bl::ArModel{}.predict(w), std::logic_error);
  EXPECT_THROW((void)bl::Knn{}.predict(w), std::logic_error);
}

TEST(BaselineContract, Names) {
  EXPECT_EQ(bl::Mlp{}.name(), "mlp");
  EXPECT_EQ(bl::Elman{}.name(), "elman");
  EXPECT_EQ(bl::Ran{}.name(), "ran");
  EXPECT_EQ(bl::Mran{}.name(), "mran");
  EXPECT_EQ(bl::ArModel{}.name(), "ar");
  EXPECT_EQ(bl::Knn{}.name(), "knn");
}

// ---- learnability: every model must beat the mean predictor on a clean sine.

TEST(Mlp, BeatsMeanPredictorOnSine) {
  const WindowDataset data(sine_series(400), 4, 1);
  bl::MlpConfig cfg;
  cfg.epochs = 80;
  bl::Mlp model(cfg);
  model.fit(data);
  EXPECT_LT(model_mse(model, data), 0.25 * mean_predictor_mse(data));
  EXPECT_LT(model.final_train_mse(), mean_predictor_mse(data));
}

TEST(Elman, BeatsMeanPredictorOnSine) {
  const WindowDataset data(sine_series(400), 4, 1);
  bl::ElmanConfig cfg;
  cfg.epochs = 60;
  bl::Elman model(cfg);
  model.fit(data);
  EXPECT_LT(model_mse(model, data), 0.5 * mean_predictor_mse(data));
}

TEST(Ran, BeatsMeanPredictorOnSine) {
  const WindowDataset data(sine_series(600), 4, 1);
  bl::Ran model;
  model.fit(data);
  EXPECT_GT(model.units(), 0u);
  EXPECT_LT(model_mse(model, data), 0.5 * mean_predictor_mse(data));
}

TEST(Mran, BeatsMeanPredictorOnSine) {
  const WindowDataset data(sine_series(600), 4, 1);
  bl::Mran model;
  model.fit(data);
  EXPECT_GT(model.units(), 0u);
  EXPECT_LT(model_mse(model, data), 0.5 * mean_predictor_mse(data));
}

TEST(Ar, ExactOnLinearSeries) {
  // x_t = 0.002·t: targets are an exact affine function of any window.
  std::vector<double> v(300);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 0.002 * static_cast<double>(i);
  const WindowDataset data(TimeSeries(std::move(v)), 4, 3);
  bl::ArModel model;
  model.fit(data);
  EXPECT_LT(model_mse(model, data), 1e-10);
  EXPECT_FALSE(model.fit_result().degenerate);
}

TEST(Ar, BeatsMeanPredictorOnSine) {
  const WindowDataset data(sine_series(400), 4, 1);
  bl::ArModel model;
  model.fit(data);
  // A sine is near-perfectly AR(2)-predictable.
  EXPECT_LT(model_mse(model, data), 0.01 * mean_predictor_mse(data));
}

TEST(Knn, PerfectOnTrainingPoints) {
  const WindowDataset data(sine_series(200), 4, 1);
  bl::KnnConfig cfg;
  cfg.k = 1;
  bl::Knn model(cfg);
  model.fit(data);
  // 1-NN on a training pattern returns exactly its own target.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(model.predict(data.pattern(i)), data.target(i), 1e-12);
  }
}

TEST(Knn, AveragesKNeighbours) {
  // Two distinct training patterns; query equidistant → mean of targets.
  std::vector<double> v{0.0, 0.0, 10.0, 10.0, 4.0};
  // D=2, τ=1: patterns (0,0)→10, (0,10)→10, (10,10)→4.
  const WindowDataset data(TimeSeries(std::move(v)), 2, 1);
  bl::KnnConfig cfg;
  cfg.k = 3;
  bl::Knn model(cfg);
  model.fit(data);
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{5.0, 5.0}), 8.0);
}

TEST(Knn, InverseDistanceWeightingPrefersCloser) {
  std::vector<double> v{0.0, 0.0, 100.0, 100.0, 0.0};
  // patterns (0,0)→100, (0,100)→100, (100,100)→0.
  const WindowDataset data(TimeSeries(std::move(v)), 2, 1);
  bl::KnnConfig cfg;
  cfg.k = 3;
  cfg.inverse_distance_weighting = true;
  bl::Knn model(cfg);
  model.fit(data);
  // Query very near (100,100) must be pulled toward 0.
  EXPECT_LT(model.predict(std::vector<double>{99.0, 99.0}), 40.0);
  // Exact match short-circuits.
  EXPECT_DOUBLE_EQ(model.predict(std::vector<double>{0.0, 0.0}), 100.0);
}

// ---- behavioural details ----------------------------------------------------

TEST(Mlp, DeterministicForSameSeed) {
  const WindowDataset data(sine_series(200), 4, 1);
  bl::Mlp a;
  bl::Mlp b;
  a.fit(data);
  b.fit(data);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.predict(data.pattern(i)), b.predict(data.pattern(i)));
  }
}

TEST(Mlp, RefitReplacesModel) {
  const WindowDataset sine(sine_series(200), 4, 1);
  std::vector<double> flat(100, 0.5);
  const WindowDataset constant(TimeSeries(std::move(flat)), 4, 1);
  bl::Mlp model;
  model.fit(sine);
  model.fit(constant);
  EXPECT_NEAR(model.predict(constant.pattern(0)), 0.5, 0.05);
}

TEST(Ran, AllocationRespectsMaxUnits) {
  bl::RanConfig cfg;
  cfg.max_units = 5;
  cfg.epsilon = 1e-9;  // force allocation pressure
  bl::Ran model(cfg);
  const WindowDataset data(sine_series(500, 0.05), 4, 1);
  model.fit(data);
  EXPECT_LE(model.units(), 5u);
}

TEST(Mran, PrunesUselessUnits) {
  // Aggressive pruning settings on noise: some units must get pruned, and
  // the final network stays smaller than RAN's under the same thresholds.
  bl::MranConfig mcfg;
  mcfg.epsilon = 0.005;
  mcfg.epsilon_rms = 0.001;
  mcfg.prune_threshold = 0.05;
  mcfg.prune_window = 10;
  bl::Mran mran(mcfg);

  bl::RanConfig rcfg;
  rcfg.epsilon = 0.005;
  bl::Ran ran(rcfg);

  const WindowDataset data(sine_series(800, 0.05, 3), 4, 1);
  mran.fit(data);
  ran.fit(data);
  EXPECT_LE(mran.units(), ran.units());
}

TEST(PredictAll, MatchesPointwisePredict) {
  const WindowDataset data(sine_series(150), 4, 1);
  bl::ArModel model;
  model.fit(data);
  const auto all = model.predict_all(data);
  ASSERT_EQ(all.size(), data.count());
  for (std::size_t i = 0; i < data.count(); ++i) {
    EXPECT_DOUBLE_EQ(all[i], model.predict(data.pattern(i)));
  }
}

}  // namespace
