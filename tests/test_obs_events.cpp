// Event log: ring bounds, JSON-line shape (validated with the serve JSON
// parser), file sink, and the macro bridge that feeds the flight recorder
// from training and serving code.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/rule_system.hpp"
#include "obs/events.hpp"
#include "obs/macros.hpp"
#include "serve/json.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"
#include "series/synthetic.hpp"

namespace {

using ef::obs::Event;
using ef::obs::EventField;
using ef::obs::EventLog;

ef::serve::json::Object parse_line(const std::string& line) {
  std::string error;
  const auto doc = ef::serve::json::parse(line, error);
  EXPECT_TRUE(doc.has_value()) << "not JSON: " << line << " (" << error << ")";
  const auto* object = doc ? doc->as_object() : nullptr;
  EXPECT_NE(object, nullptr) << line;
  return object ? *object : ef::serve::json::Object{};
}

/// Kinds present in the global log, in emission order. Unreferenced when
/// the macro-bridge tests are skipped (EVOFORECAST_OBS=OFF).
[[maybe_unused]] std::vector<std::string> global_kinds() {
  std::vector<std::string> out;
  for (const Event& e : EventLog::global().recent()) out.push_back(e.kind);
  return out;
}

[[maybe_unused]] bool has_kind(const std::vector<std::string>& kinds, std::string_view kind) {
  for (const auto& k : kinds) {
    if (k == kind) return true;
  }
  return false;
}

TEST(EventLog, EmitsSequencedTimestampedJson) {
  EventLog log(16);
  log.emit("unit.test", {{"answer", 42}, {"ratio", 0.5}, {"on", true}, {"who", "efstat"}});
  log.emit("unit.test2");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total_emitted(), 2u);

  const auto events = log.recent();
  EXPECT_EQ(events[0].seq + 1, events[1].seq);
  EXPECT_LE(events[0].ts_ms, events[1].ts_ms);

  const auto object = parse_line(events[0].to_json());
  ASSERT_TRUE(object.count("kind"));
  EXPECT_EQ(*object.at("kind").as_string(), "unit.test");
  EXPECT_EQ(*object.at("answer").as_number(), 42.0);
  EXPECT_EQ(*object.at("ratio").as_number(), 0.5);
  EXPECT_EQ(*object.at("on").as_bool(), true);
  EXPECT_EQ(*object.at("who").as_string(), "efstat");
}

TEST(EventLog, RingDropsOldestAndCounts) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) log.emit("e", {{"i", i}});
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_EQ(log.total_emitted(), 10u);
  const auto events = log.recent();
  EXPECT_EQ(*parse_line(events.front().to_json()).at("i").as_number(), 6.0);
  EXPECT_EQ(*parse_line(events.back().to_json()).at("i").as_number(), 9.0);
}

TEST(EventLog, DumpJsonLinesAllParse) {
  EventLog log(8);
  log.emit("a", {{"x", 1}});
  log.emit("b", {{"quote", "say \"hi\"\n"}});
  const std::string dump = log.dump_json_lines();
  std::istringstream in(dump);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    parse_line(line);
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(EventLog, FileSinkStreamsEvents) {
  const auto path = std::filesystem::temp_directory_path() / "ef_events_test.jsonl";
  std::filesystem::remove(path);
  {
    EventLog log(8);
    ASSERT_TRUE(log.set_file_sink(path.string()));
    EXPECT_TRUE(log.has_file_sink());
    log.emit("sink.test", {{"n", 7}});
    log.emit("sink.test", {{"n", 8}});
    ASSERT_TRUE(log.set_file_sink(""));  // close
    EXPECT_FALSE(log.has_file_sink());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    const auto object = parse_line(line);
    EXPECT_EQ(*object.at("kind").as_string(), "sink.test");
    ++count;
  }
  EXPECT_EQ(count, 2u);
  std::filesystem::remove(path);
}

TEST(EventLog, ThreadSafeUnderConcurrentEmit) {
  EventLog log(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < 100; ++i) log.emit("thread", {{"t", t}, {"i", i}});
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(log.total_emitted(), 400u);
  EXPECT_EQ(log.size(), 64u);
}

// --- macro bridge: the kinds the flight recorder promises to carry --------

TEST(EventBridge, TrainingEmitsGenerationAndExecutionEvents) {
#if !EVOFORECAST_OBS_ENABLED
  GTEST_SKIP() << "events compiled out (EVOFORECAST_OBS=OFF)";
#else
  const auto series = ef::series::generate_sine(220, {1.0, 25.0, 0.0, 0.0, 0.0, 7});
  const ef::core::WindowDataset data(series, 4, 1);
  ef::core::RuleSystemConfig config;
  config.evolution.population_size = 12;
  config.evolution.generations = 20;
  config.evolution.telemetry_stride = 10;
  config.evolution.seed = 5;
  config.max_executions = 1;
  const auto before = EventLog::global().total_emitted();
  (void)ef::core::train(data, {.config = config});
  ASSERT_GT(EventLog::global().total_emitted(), before);

  const auto kinds = global_kinds();
  EXPECT_TRUE(has_kind(kinds, "train.generation"));
  EXPECT_TRUE(has_kind(kinds, "train.execution"));
#endif
}

TEST(EventBridge, ModelLoadAndReloadFailureEmitEvents) {
#if !EVOFORECAST_OBS_ENABLED
  GTEST_SKIP() << "events compiled out (EVOFORECAST_OBS=OFF)";
#else
  const auto series = ef::series::generate_sine(220, {1.0, 25.0, 0.0, 0.0, 0.0, 7});
  const ef::core::WindowDataset data(series, 4, 1);
  ef::core::RuleSystemConfig config;
  config.evolution.population_size = 10;
  config.evolution.generations = 10;
  config.max_executions = 1;
  const auto trained = ef::core::train(data, {.config = config});

  const auto path = std::filesystem::temp_directory_path() / "ef_events_model.efr";
  {
    std::ofstream out(path);
    trained.system.save(out);
  }
  ef::serve::ModelStore store;
  store.add_file("m", path.string());
  EXPECT_TRUE(has_kind(global_kinds(), "serve.model.load"));

  // Corrupt the file and force a reload attempt: reload_failed event.
  const auto mtime = std::filesystem::last_write_time(path);
  {
    std::ofstream out(path);
    out << "this is not a rule system";
  }
  std::filesystem::last_write_time(path, mtime + std::chrono::seconds(2));
  store.poll_now();
  EXPECT_TRUE(has_kind(global_kinds(), "serve.model.reload_failed"));
  std::filesystem::remove(path);
#endif
}

TEST(EventBridge, SlowRequestThresholdEmitsEvent) {
#if !EVOFORECAST_OBS_ENABLED
  GTEST_SKIP() << "events compiled out (EVOFORECAST_OBS=OFF)";
#else
  const auto series = ef::series::generate_sine(220, {1.0, 25.0, 0.0, 0.0, 0.0, 7});
  const ef::core::WindowDataset data(series, 4, 1);
  ef::core::RuleSystemConfig config;
  config.evolution.population_size = 10;
  config.evolution.generations = 10;
  config.max_executions = 1;
  const auto trained = ef::core::train(data, {.config = config});

  ef::serve::ModelStore store;
  store.add_system("m", trained.system);
  ef::serve::ServeOptions service_config;
  service_config.enable_batcher = false;
  service_config.slow_request_us = 1e-3;  // everything is "slow"
  ef::serve::ForecastService service(store, service_config);

  ef::serve::PredictRequest request;
  request.model = "m";
  request.window = {series[0], series[1], series[2], series[3]};
  (void)service.predict(request);
  EXPECT_TRUE(has_kind(global_kinds(), "serve.slow_request"));

  // Threshold 0 disables the event path (no crash, counter untouched).
  ef::serve::ServeOptions quiet = service_config;
  quiet.slow_request_us = 0.0;
  ef::serve::ForecastService quiet_service(store, quiet);
  (void)quiet_service.predict(request);
#endif
}

TEST(EventMacro, CompilesOutOrEmits) {
  const auto before = EventLog::global().total_emitted();
  EVOFORECAST_EVENT("macro.test", {"k", 1});
#if EVOFORECAST_OBS_ENABLED
  EXPECT_EQ(EventLog::global().total_emitted(), before + 1);
#else
  EXPECT_EQ(EventLog::global().total_emitted(), before);
#endif
}

}  // namespace
