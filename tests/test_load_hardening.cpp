// Tests for the hardened RuleSystem::load: corrupt, truncated and hostile
// .efr payloads must fail with a clean std::runtime_error — no allocation
// bomb from huge declared counts, no NaN/inf smuggled into predictions.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/rule_system.hpp"

namespace {

using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystem;

RuleSystem small_system() {
  Rule rule({Interval(0.0, 0.5), Interval::wildcard()});
  ef::core::PredictingPart part;
  part.fit.coeffs = {0.25, -0.5, 0.125};
  part.fit.mean_prediction = 0.125;
  part.fit.max_abs_residual = 0.01;
  part.matches = 3;
  part.fitness = 1.5;
  rule.set_predicting(part);
  RuleSystem system;
  system.add_rules({rule}, false, -1.0);
  return system;
}

std::string saved_text() {
  std::ostringstream out;
  small_system().save(out);
  return out.str();
}

void expect_load_fails(const std::string& payload) {
  std::istringstream in(payload);
  EXPECT_THROW((void)RuleSystem::load(in), std::runtime_error) << payload;
}

TEST(LoadHardening, RoundTripStillWorks) {
  std::istringstream in(saved_text());
  const RuleSystem loaded = RuleSystem::load(in);
  ASSERT_EQ(loaded.size(), 1u);
  const std::vector<double> window{0.25, 7.0};
  const auto original = small_system().forecast(window).as_optional();
  const auto reloaded = loaded.forecast(window).as_optional();
  ASSERT_TRUE(original.has_value());
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(*original, *reloaded);
}

TEST(LoadHardening, BadHeader) {
  expect_load_fails("not-a-rules-file\n1\n");
  expect_load_fails("");
}

TEST(LoadHardening, MissingOrHostileRuleCount) {
  expect_load_fails("evoforecast-rules v1\n");
  expect_load_fails("evoforecast-rules v1\nbanana\n");
  // Oversized declared count: must be rejected before any allocation
  // proportional to it (allocation-bomb guard).
  expect_load_fails("evoforecast-rules v1\n1000000000\n");
  expect_load_fails("evoforecast-rules v1\n18446744073709551615\n");
}

TEST(LoadHardening, TruncatedPayloads) {
  const std::string full = saved_text();
  // Chop the serialised text at several interior points: every prefix that
  // still has the header but lost data must fail cleanly.
  const std::size_t header_end = full.find('\n') + 1;
  for (std::size_t cut = header_end + 2; cut < full.size() - 1; cut += 7) {
    std::istringstream in(full.substr(0, cut));
    EXPECT_THROW((void)RuleSystem::load(in), std::runtime_error) << "cut at " << cut;
  }
  // Declared count larger than the rules actually present.
  std::string overdeclared = full;
  overdeclared[full.find('\n') + 1] = '9';
  expect_load_fails(overdeclared);
}

TEST(LoadHardening, HostileWindowSize) {
  expect_load_fails("evoforecast-rules v1\n1\n0 1 0.5 0.1 0.2 0\n");       // window 0
  expect_load_fails("evoforecast-rules v1\n1\n999999 * *\n");               // window huge
}

TEST(LoadHardening, HostileCoefficientCount) {
  // window 1, one wildcard gene, then an absurd coefficient count.
  expect_load_fails("evoforecast-rules v1\n1\n1 * * 99999999 0.0\n");
}

TEST(LoadHardening, NonFiniteValuesRejected) {
  // NaN coefficient.
  expect_load_fails("evoforecast-rules v1\n1\n1 * * 2 nan 0.0 0.1 0.2 0 3 1.5\n");
  // Infinite coefficient.
  expect_load_fails("evoforecast-rules v1\n1\n1 * * 2 inf 0.0 0.1 0.2 0 3 1.5\n");
  // NaN stats.
  expect_load_fails("evoforecast-rules v1\n1\n1 * * 2 0.5 0.0 nan 0.2 0 3 1.5\n");
  expect_load_fails("evoforecast-rules v1\n1\n1 * * 2 0.5 0.0 0.1 0.2 0 3 inf\n");
  // Non-finite gene bound.
  expect_load_fails("evoforecast-rules v1\n1\n1 inf inf 2 0.5 0.0 0.1 0.2 0 3 1.5\n");
}

TEST(LoadHardening, MalformedGenes) {
  // lo > hi violates the Interval invariant.
  expect_load_fails("evoforecast-rules v1\n1\n1 0.9 0.1 2 0.5 0.0 0.1 0.2 0 3 1.5\n");
  // Unparseable gene text.
  expect_load_fails("evoforecast-rules v1\n1\n1 abc def 2 0.5 0.0 0.1 0.2 0 3 1.5\n");
  // Half-wildcard gene.
  expect_load_fails("evoforecast-rules v1\n1\n1 * 0.5 2 0.5 0.0 0.1 0.2 0 3 1.5\n");
}

TEST(LoadHardening, ValidMinimalPayloadLoads) {
  // window 1, wildcard gene, 2 coeffs, stats: residual mean degenerate matches fitness.
  std::istringstream in("evoforecast-rules v1\n1\n1 * * 2 0.5 0.25 0.1 0.2 0 3 1.5\n");
  const RuleSystem system = RuleSystem::load(in);
  ASSERT_EQ(system.size(), 1u);
  const std::vector<double> window{2.0};
  const auto prediction = system.forecast(window).as_optional();
  ASSERT_TRUE(prediction.has_value());
  EXPECT_DOUBLE_EQ(*prediction, 0.5 * 2.0 + 0.25);
}

}  // namespace
