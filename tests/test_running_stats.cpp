// Tests for util/running_stats.hpp against closed-form references and the
// parallel-merge identity.
#include "util/running_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace {

using ef::util::RunningStats;

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownSmallSet) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SampleVarianceUsesNMinus1) {
  RunningStats s;
  for (const double v : {1.0, 2.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  ef::util::Rng rng(99);
  std::vector<double> data(5000);
  for (double& v : data) v = rng.normal(10.0, 3.0);

  RunningStats whole;
  for (const double v : data) whole.add(v);

  RunningStats left;
  RunningStats right;
  for (std::size_t i = 0; i < data.size(); ++i) (i < 2000 ? left : right).add(data[i]);
  left.merge(right);

  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  RunningStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);

  RunningStats other;
  other.merge(s);
  EXPECT_EQ(other.count(), 2u);
  EXPECT_DOUBLE_EQ(other.mean(), 1.5);
}

TEST(RunningStats, StableOnLargeOffset) {
  // Naive sum-of-squares catastrophically cancels here; Welford must not.
  RunningStats s;
  const double base = 1e9;
  for (const double v : {base + 1.0, base + 2.0, base + 3.0}) s.add(v);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

}  // namespace
