// Tests for core/fitness.hpp: the paper's fitness formula (branch conditions,
// monotonicity properties via TEST_P) and the full evaluator pipeline.
#include "core/fitness.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "core/dataset.hpp"
#include "core/match_engine.hpp"
#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::Evaluator;
using ef::core::EvolutionConfig;
using ef::core::fitness_value;
using ef::core::Interval;
using ef::core::MatchEngine;
using ef::core::Rule;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

// ---- fitness_value formula --------------------------------------------------

TEST(FitnessValue, HappyPath) {
  // N_R = 10, e = 0.02, EMAX = 0.1 → 10·0.1 − 0.02 = 0.98.
  EXPECT_DOUBLE_EQ(fitness_value(10, 0.02, 0.1, -1.0), 0.98);
}

TEST(FitnessValue, SingleMatchGetsFMin) {
  EXPECT_DOUBLE_EQ(fitness_value(1, 0.0, 0.1, -1.0), -1.0);
}

TEST(FitnessValue, ZeroMatchesGetsFMin) {
  EXPECT_DOUBLE_EQ(fitness_value(0, 0.0, 0.1, -1.0), -1.0);
}

TEST(FitnessValue, ErrorAtEmaxGetsFMin) {
  EXPECT_DOUBLE_EQ(fitness_value(10, 0.1, 0.1, -1.0), -1.0);   // e == EMAX excluded
  EXPECT_DOUBLE_EQ(fitness_value(10, 0.11, 0.1, -1.0), -1.0);  // e > EMAX
}

TEST(FitnessValue, TwoMatchesIsEnough) {
  EXPECT_GT(fitness_value(2, 0.05, 0.1, -1.0), -1.0);
}

class FitnessMonotonicityTest
    : public testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(FitnessMonotonicityTest, MoreMatchesNeverHurts) {
  const auto [n, e] = GetParam();
  const double emax = 0.1;
  if (n > 1 && e < emax) {
    EXPECT_GT(fitness_value(n + 1, e, emax, -1.0), fitness_value(n, e, emax, -1.0));
  } else {
    EXPECT_GE(fitness_value(n + 1, e, emax, -1.0), fitness_value(n, e, emax, -1.0));
  }
}

TEST_P(FitnessMonotonicityTest, LowerErrorNeverHurts) {
  const auto [n, e] = GetParam();
  const double emax = 0.1;
  const double smaller = e * 0.5;
  EXPECT_GE(fitness_value(n, smaller, emax, -1.0), fitness_value(n, e, emax, -1.0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FitnessMonotonicityTest,
                         testing::Combine(testing::Values<std::size_t>(0, 1, 2, 5, 50, 500),
                                          testing::Values(0.0, 0.01, 0.05, 0.09, 0.099,
                                                          0.1, 0.5)));

// A rule matching many points with near-EMAX error can outrank a rule
// matching few points perfectly — the balance the paper's fitness encodes.
TEST(FitnessValue, CoverageBeatsPerfection) {
  const double emax = 0.1;
  const double many_sloppy = fitness_value(100, 0.09, emax, -1.0);
  const double few_perfect = fitness_value(3, 0.0, emax, -1.0);
  EXPECT_GT(many_sloppy, few_perfect);
}

// ---- Evaluator pipeline -----------------------------------------------------

class EvaluatorTest : public testing::Test {
 protected:
  // Linear ramp: every window is exactly predictable → e_R ≈ 0 for any rule.
  EvaluatorTest() : series_(make_ramp()), data_(series_, 3, 1), engine_(data_) {
    config_.emax = 0.5;
    config_.f_min = -1.0;
  }

  static TimeSeries make_ramp() {
    std::vector<double> v(60);
    std::iota(v.begin(), v.end(), 0.0);
    return TimeSeries(std::move(v));
  }

  TimeSeries series_;
  WindowDataset data_;
  MatchEngine engine_;
  EvolutionConfig config_;
};

TEST_F(EvaluatorTest, AllWildcardRuleMatchesAllAndFitsPerfectly) {
  const Evaluator ev(engine_, config_);
  Rule r({Interval::wildcard(), Interval::wildcard(), Interval::wildcard()});
  ev.evaluate(r);
  ASSERT_TRUE(r.predicting().has_value());
  EXPECT_EQ(r.predicting()->matches, data_.count());
  // Ridge regularisation leaves a tiny residual on the exactly-linear ramp.
  EXPECT_LT(r.predicting()->error(), 1e-3);
  EXPECT_NEAR(r.fitness(),
              static_cast<double>(data_.count()) * config_.emax - r.predicting()->error(),
              1e-9);
}

TEST_F(EvaluatorTest, NonMatchingRuleGetsFMin) {
  const Evaluator ev(engine_, config_);
  Rule r({Interval(1000, 2000), Interval::wildcard(), Interval::wildcard()});
  ev.evaluate(r);
  ASSERT_TRUE(r.predicting().has_value());
  EXPECT_EQ(r.predicting()->matches, 0u);
  EXPECT_DOUBLE_EQ(r.fitness(), config_.f_min);
}

TEST_F(EvaluatorTest, SingleMatchRuleGetsFMin) {
  const Evaluator ev(engine_, config_);
  // Window (0,1,2) is the only one whose first value is <= 0.
  Rule r({Interval(0, 0), Interval::wildcard(), Interval::wildcard()});
  ev.evaluate(r);
  ASSERT_TRUE(r.predicting().has_value());
  EXPECT_EQ(r.predicting()->matches, 1u);
  EXPECT_DOUBLE_EQ(r.fitness(), config_.f_min);
}

TEST_F(EvaluatorTest, KeepMatchesReturnsMatchedIndices) {
  const Evaluator ev(engine_, config_);
  Rule r({Interval(0, 10), Interval::wildcard(), Interval::wildcard()});
  std::vector<std::size_t> matched;
  ev.evaluate(r, &matched);
  // First values 0..10 → indices 0..10.
  ASSERT_EQ(matched.size(), 11u);
  for (std::size_t i = 0; i < matched.size(); ++i) EXPECT_EQ(matched[i], i);
  EXPECT_EQ(r.predicting()->matches, 11u);
}

TEST_F(EvaluatorTest, EvaluateAllCoversWholePopulation) {
  const Evaluator ev(engine_, config_);
  std::vector<Rule> population;
  for (int i = 0; i < 10; ++i) {
    population.emplace_back(std::vector<Interval>{
        Interval(i * 5.0, i * 5.0 + 10.0), Interval::wildcard(), Interval::wildcard()});
  }
  ev.evaluate_all(population);
  for (const Rule& r : population) EXPECT_TRUE(r.predicting().has_value());
}

// EMAX gate: on noisy data a global rule's max-residual exceeds a tight EMAX
// and must be punished with f_min.
TEST(EvaluatorNoise, TightEmaxPunishesGlobalRule) {
  ef::util::Rng rng(8);
  std::vector<double> v;
  for (int i = 0; i < 300; ++i) v.push_back(rng.uniform(0.0, 1.0));
  const TimeSeries s(v);
  const WindowDataset data(s, 3, 1);
  const MatchEngine engine(data);

  EvolutionConfig tight;
  tight.emax = 1e-4;
  tight.f_min = -7.0;
  const Evaluator ev(engine, tight);
  Rule r({Interval::wildcard(), Interval::wildcard(), Interval::wildcard()});
  ev.evaluate(r);
  EXPECT_DOUBLE_EQ(r.fitness(), -7.0);

  EvolutionConfig loose = tight;
  loose.emax = 10.0;
  const Evaluator ev2(engine, loose);
  ev2.evaluate(r);
  EXPECT_GT(r.fitness(), 0.0);
}

}  // namespace
