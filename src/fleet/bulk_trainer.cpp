#include "fleet/bulk_trainer.hpp"

#include <chrono>
#include <exception>

#include "core/dataset.hpp"
#include "obs/macros.hpp"
#include "obs/timeline.hpp"

namespace ef::fleet {

std::uint64_t derive_series_seed(std::uint64_t base_seed, std::string_view id) {
  // FNV-1a 64-bit over the id bytes, offset by the base seed…
  std::uint64_t h = 14695981039346656037ull ^ base_seed;
  for (const char c : id) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  // …then a splitmix64 finalizer so near-identical ids diverge fully.
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

FleetTrainResult train_fleet(std::span<const SeriesRecord> fleet,
                             const FleetTrainOptions& options) {
  const obs::TraceScope timeline("fleet.train");
  const auto start = std::chrono::steady_clock::now();

  FleetTrainResult result;
  result.models.resize(fleet.size());

  // Inner trainings run on a single-worker sentinel pool: its parallel_for
  // executes inline on the calling (outer pool) thread, so outer workers
  // never wait on a nested dispatch — the same inversion train_islands
  // uses. The across-series loop is where the cores go.
  static util::ThreadPool inline_pool(1);
  util::ThreadPool& tp = options.pool ? *options.pool : util::ThreadPool::shared();
  const obs::TraceContext trace_ctx = obs::current_context();
  tp.parallel_for(
      0, fleet.size(),
      [&](std::size_t begin, std::size_t end) {
        const obs::ContextGuard trace_guard(trace_ctx);
        for (std::size_t i = begin; i < end; ++i) {
          const SeriesRecord& record = fleet[i];
          TrainedSeries& out = result.models[i];
          out.id = record.id;
          out.seed = derive_series_seed(options.config.evolution.seed, record.id);
          obs::SpanScope span("fleet.train_series");
          span.set_arg("series", static_cast<double>(i));
          try {
            const core::WindowDataset data(record.series, options.window, options.horizon,
                                           options.stride);
            core::TrainOptions train_options;
            train_options.config = options.config;
            train_options.pool = &inline_pool;
            train_options.parallelism = core::TrainParallelism::kSequential;
            train_options.seed = out.seed;
            core::TrainResult trained = core::train(data, train_options);
            out.system = std::move(trained.system);
            out.executions = trained.executions;
            out.train_coverage_percent = trained.train_coverage_percent;
            EVOFORECAST_COUNT("fleet.series_trained", 1);
          } catch (const std::exception& e) {
            // Too short for one pattern, degenerate values, bad config for
            // this particular series — record and move on.
            out.skipped = true;
            out.skip_reason = e.what();
            EVOFORECAST_COUNT("fleet.series_skipped", 1);
          }
        }
      },
      /*grain=*/1);

  for (const TrainedSeries& model : result.models) {
    if (model.skipped) {
      ++result.skipped;
    } else {
      ++result.trained;
      result.total_rules += model.system.size();
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EVOFORECAST_GAUGE_SET("fleet.last_train_seconds", result.wall_seconds);
  EVOFORECAST_EVENT("fleet.train", {"series", fleet.size()}, {"trained", result.trained},
                    {"skipped", result.skipped}, {"rules", result.total_rules},
                    {"seconds", result.wall_seconds});
  return result;
}

}  // namespace ef::fleet
