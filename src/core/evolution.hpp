// evolution.hpp — the steady-state Michigan engine (paper §3.3).
//
// Per generation: select two parents by tournament, produce ONE offspring by
// uniform crossover, mutate it, evaluate it against the training data, find
// the victim slot (crowding by default) and replace only if the offspring is
// fitter. The *population* is the solution — there is no "best individual"
// answer; RuleSystem (rule_system.hpp) turns populations into a predictor.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "core/crowding.hpp"
#include "core/dataset.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "core/match_engine.hpp"
#include "core/rule.hpp"
#include "core/telemetry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ef::core {

class SteadyStateEngine {
 public:
  /// `data` must outlive the engine. Throws std::invalid_argument on an
  /// invalid config. The population is initialised and evaluated eagerly.
  SteadyStateEngine(const WindowDataset& data, EvolutionConfig config,
                    util::ThreadPool* pool = nullptr, TelemetrySink telemetry = {});

  /// Warm-start constructor: seed the engine with an existing population
  /// instead of running initialisation — the basis of incremental updates
  /// when new data arrives (rule_system.hpp: extend_rule_system). The seed
  /// rules are re-evaluated against `data` (their predicting parts may be
  /// stale); if more rules than population_size are given the fittest
  /// survive, if fewer, fresh initialised rules fill the gap.
  SteadyStateEngine(const WindowDataset& data, EvolutionConfig config,
                    std::vector<Rule> seed_population, util::ThreadPool* pool = nullptr,
                    TelemetrySink telemetry = {});

  /// One steady-state generation. Returns true when the offspring was
  /// accepted into the population.
  bool step();

  /// Run `config.generations` − `generation()` remaining generations.
  void run();

  [[nodiscard]] const std::vector<Rule>& population() const noexcept { return population_; }
  [[nodiscard]] std::size_t generation() const noexcept { return generation_; }
  [[nodiscard]] std::size_t replacements() const noexcept { return replacements_; }
  [[nodiscard]] const EvolutionConfig& config() const noexcept { return config_; }
  [[nodiscard]] const WindowDataset& data() const noexcept { return data_; }

  /// Fittest individual (for traces; the solution is the whole population).
  [[nodiscard]] const Rule& best() const;

  /// Current population snapshot statistics (also emitted via telemetry).
  [[nodiscard]] TelemetryRecord snapshot() const;

 private:
  void emit_telemetry();

  const WindowDataset& data_;
  EvolutionConfig config_;
  MatchEngine engine_;
  Evaluator evaluator_;
  util::Rng rng_;
  TelemetrySink telemetry_;

  std::vector<Rule> population_;
  /// Matched training-window sets per individual; maintained only when the
  /// crowding metric is kMatchedJaccard (kept empty otherwise).
  std::vector<std::vector<std::size_t>> matched_;

  std::size_t generation_ = 0;
  std::size_t replacements_ = 0;
};

}  // namespace ef::core
