// bench_table3_sunspot — reproduces Table 3: monthly sunspot forecasting at
// horizons τ ∈ {1,4,8,12,18} with D = 24 inputs, Galván-Isasi error
// e = 1/(2(N+τ)) Σ(x−x̃)², against our re-trained feed-forward (MLP) and
// recurrent (Elman) comparators. Split follows the paper: train 1749-1919,
// skip 1920-1928, validate 1929-1977/03, normalised to [0,1].
//
// The experiment logic lives in src/experiments (shared with the
// shape-regression tests); this binary is the CLI + table printer.
#include <cstdio>

#include "bench_common.hpp"
#include "experiments/experiments.hpp"
#include "series/sunspot.hpp"
#include "util/cli.hpp"
#include "util/running_stats.hpp"

namespace {

struct PaperRow {
  std::size_t horizon;
  double coverage_percent;
  double error_rs;
  double error_feedforward;
  double error_recurrent;
};

constexpr PaperRow kPaperTable3[] = {
    {1, 100.0, 0.00228, 0.00511, 0.00511}, {4, 97.6, 0.00351, 0.00965, 0.00838},
    {8, 95.2, 0.00377, 0.01177, 0.00781},  {12, 100.0, 0.00642, 0.01587, 0.01080},
    {18, 99.8, 0.01021, 0.02570, 0.01464},
};

}  // namespace

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");

  ef::experiments::SunspotRowConfig base;
  base.window = static_cast<std::size_t>(cli.get_int("window", 24));
  base.generations =
      static_cast<std::size_t>(cli.get_int("generations", full ? 75000 : 15000));
  base.population = static_cast<std::size_t>(cli.get_int("population", 100));
  base.max_executions = static_cast<std::size_t>(cli.get_int("executions", 8));
  base.mlp_epochs = full ? 80 : 40;
  base.elman_epochs = full ? 50 : 25;
  // Normalised units; <= 0 uses the calibrated schedule 0.18 + 0.007·τ
  // (sunspot noise grows with activity — calibration in EXPERIMENTS.md).
  base.emax = cli.get_double("emax", -1.0);
  const auto seed_base = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto n_seeds = static_cast<std::size_t>(cli.get_int("seeds", 1));
  // --horizons 1,24 restricts the sweep (useful for --full single rows).
  const auto horizon_filter = ef::bench::parse_size_list(cli.get_string("horizons", ""));

  std::printf("Table 3 reproduction — monthly sunspots (synthetic substitute)\n");
  std::printf("train 1749-1919 (%zu mo), validation 1929-1977/03 (%zu mo), D=%zu\n",
              ef::series::kSunspotTrainMonths, ef::series::kSunspotValidationMonths,
              base.window);
  ef::bench::print_rule('=');

  std::printf("%4s | %7s %9s %7s | %9s %9s | %7s %9s %9s %9s\n", "tau", "cov%", "eRS",
              "rules", "eMLP", "eElman", "papCov%", "papRS", "papFF", "papRec");
  ef::bench::print_rule();

  for (const PaperRow& row : kPaperTable3) {
    if (!ef::bench::selected(horizon_filter, row.horizon)) continue;
    ef::util::RunningStats coverage_stats;
    ef::util::RunningStats error_stats;
    ef::experiments::SunspotRowResult last{};
    for (std::size_t s = 0; s < n_seeds; ++s) {
      ef::experiments::SunspotRowConfig cfg = base;
      cfg.horizon = row.horizon;
      cfg.seed = seed_base + 1000 * s;
      last = ef::experiments::run_sunspot_row(cfg);
      coverage_stats.add(last.rs.coverage_percent);
      error_stats.add(last.galvan_rs);
    }

    std::printf("%4zu | %6.1f%% %9.5f %7zu | %9.5f %9.5f | %6.1f%% %9.5f %9.5f %9.5f\n",
                row.horizon, coverage_stats.mean(), error_stats.mean(), last.rs.rules,
                last.galvan_mlp, last.galvan_elman, row.coverage_percent, row.error_rs,
                row.error_feedforward, row.error_recurrent);
    if (n_seeds > 1) {
      std::printf("     | ±%5.1f%% ±%8.5f   (sd over %zu seeds)\n",
                  coverage_stats.stddev(), error_stats.stddev(), n_seeds);
    }
    std::fflush(stdout);
  }

  ef::bench::print_rule();
  std::printf(
      "Shape checks vs the paper: (1) coverage stays >= 95%% at every horizon;\n"
      "(2) the rule system beats or matches the neural baselines at most horizons\n"
      "    (our re-trained comparators are stronger than the 2001-era cited results,\n"
      "    so margins are thinner than the paper's — see EXPERIMENTS.md);\n"
      "(3) error grows with tau for every model.\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
