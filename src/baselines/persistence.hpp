// persistence.hpp — the no-skill reference forecasters.
//
// Every forecasting comparison needs the trivial floor: persistence
// ("tomorrow = today") and seasonal persistence ("tomorrow = same time
// yesterday/last cycle"). A model that cannot beat these has learned
// nothing; bench tables include them to anchor the scale.
#pragma once

#include <cstddef>

#include "baselines/forecaster.hpp"

namespace ef::baselines {

/// ŷ(t+τ) = y(t): the last value of the window. fit() is a no-op (kept for
/// interface symmetry; it records the window length for validation).
class Persistence final : public Forecaster {
 public:
  void fit(const core::WindowDataset& train) override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "persistence"; }

 private:
  bool fitted_ = false;
};

/// ŷ(t+τ) = y(t − (period − τ mod period)): the value one whole season
/// before the target instant, read from inside the window. Falls back to
/// plain persistence when the window is too short to reach back one period.
class SeasonalPersistence final : public Forecaster {
 public:
  /// `period` in samples (e.g. 12 for the ~12.4 h tide at hourly sampling,
  /// 132 for the ~11 y sunspot cycle at monthly sampling).
  explicit SeasonalPersistence(std::size_t period);

  void fit(const core::WindowDataset& train) override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "seasonal_persistence"; }

 private:
  std::size_t period_;
  std::size_t horizon_ = 0;
  std::size_t stride_ = 1;
  bool fitted_ = false;
};

}  // namespace ef::baselines
