// obs/metrics.hpp — process-wide registry of named counters, gauges and
// fixed-bucket histograms.
//
// The registry answers the questions the per-generation telemetry CSV cannot:
// how many windows did the match engine actually test, how often does the
// predictor abstain, where does thread-pool time go. Design constraints:
//
//   * Lock-free fast path. Counter::add is a single relaxed atomic add;
//     Histogram::observe is a handful of relaxed atomics (bucket + moment
//     CAS loops). The only mutex in the layer guards *registration*, which
//     instrumentation sites pay once via a function-local static reference
//     (see obs/macros.hpp).
//   * Stable addresses. Instruments are never destroyed or reallocated once
//     registered, so cached references stay valid for the process lifetime;
//     Registry::reset_values() zeroes values but keeps the instruments.
//   * Static string keys. Metric names are expected to be string literals
//     (see docs/OBSERVABILITY.md for the catalogue); dynamic names are
//     allowed (the registry copies them) but defeat the cached-reference
//     fast path.
//
// Quantiles (p50/p90/p99) are estimated from the histogram's fixed buckets
// by linear interpolation; mean/stddev estimates fold bucket midpoints
// through util::RunningStats (Welford) while the exact sum/count give the
// exact mean. See Histogram::stats().
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/running_stats.hpp"

namespace ef::obs {

namespace detail {

/// Relaxed CAS-loop add for atomic<double> (no fetch_add for FP on all
/// targets; contention here is rare and the loop is two instructions).
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

/// Minimal test-and-set spinlock for the histogram moment accumulator. The
/// critical section is a Welford fold (~10 ns), so spinning beats a mutex.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(std::atomic_flag& flag) noexcept : flag_(flag) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~SpinLockGuard() { flag_.clear(std::memory_order_release); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  std::atomic_flag& flag_;
};

}  // namespace detail

/// Monotone event count. add() is one relaxed atomic add — safe to call from
/// any thread, including pool workers inside parallel_for chunks.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (coverage %, union size, …). set/add are thread-safe.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double x) noexcept { value_.store(x, std::memory_order_relaxed); }
  void add(double delta) noexcept { detail::atomic_add(value_, delta); }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of one histogram, with derived statistics.
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;    ///< exact (Welford)
  double stddev = 0.0;  ///< exact population stddev (Welford)
  double min = 0.0;     ///< exact; 0 when empty
  double max = 0.0;     ///< exact; 0 when empty
  double p50 = 0.0;     ///< bucket-interpolated estimates, clamped to [min, max]
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;          ///< upper bucket bounds (last bucket = +inf)
  std::vector<std::uint64_t> buckets;  ///< per-bucket counts, |bounds|+1 entries
};

/// Fixed-bucket distribution (prediction fan-in, task durations, …).
/// observe() is a relaxed atomic bucket increment plus a Welford fold
/// (util::RunningStats) under a spinlock; quantiles are interpolated from
/// the buckets on demand by stats().
class Histogram {
 public:
  /// `bounds` are ascending upper bucket edges; an implicit +inf bucket is
  /// appended. Empty bounds fall back to default_bounds().
  Histogram(std::string name, std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double x) noexcept {
    buckets_[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
    const detail::SpinLockGuard guard(moments_lock_);
    moments_.add(x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    const detail::SpinLockGuard guard(moments_lock_);
    return moments_.count();
  }

  /// Consistent-enough snapshot: buckets and moments are read under separate
  /// synchronisation, so a racing observe() may be visible in one but not
  /// yet the other. Quantiles are bucket estimates either way.
  [[nodiscard]] HistogramStats stats() const;

  void reset() noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Powers of two from 1 to 2^20 — covers small fan-in counts and
  /// microsecond-scale durations with ~2x resolution.
  [[nodiscard]] static std::vector<double> default_bounds();

 private:
  [[nodiscard]] std::size_t bucket_index(double x) const noexcept;

  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  mutable std::atomic_flag moments_lock_ = ATOMIC_FLAG_INIT;
  util::RunningStats moments_;
};

/// Linear-interpolated quantile estimate over fixed buckets, shared by
/// Histogram::stats() and the windowed collector (obs/window.hpp). `count`
/// is the rank base (normally the sum of `buckets`); `lo_clamp`/`hi_clamp`
/// bound the interpolation endpoints of the first and the +inf bucket.
/// Returns 0 when count == 0.
[[nodiscard]] double quantile_from_buckets(const std::vector<double>& bounds,
                                           const std::vector<std::uint64_t>& buckets,
                                           std::uint64_t count, double q, double lo_clamp,
                                           double hi_clamp);

/// Everything the registry knows, flattened for export (obs/export.hpp).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    HistogramStats stats;
  };
  std::vector<CounterValue> counters;      ///< sorted by name
  std::vector<GaugeValue> gauges;          ///< sorted by name
  std::vector<HistogramValue> histograms;  ///< sorted by name
};

/// Thread-safe instrument registry. Registration takes a mutex; returned
/// references are valid for the process lifetime (instruments are never
/// destroyed, reset_values() only zeroes them).
class Registry {
 public:
  /// The process-wide registry all instrumentation macros record into.
  [[nodiscard]] static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name. A name identifies at most one instrument kind;
  /// reusing a name across kinds throws std::invalid_argument.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// First registration fixes the bucket bounds; later callers get the
  /// existing histogram regardless of the bounds they pass.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> bounds = {});

  /// Zero every instrument's value without invalidating cached references.
  void reset_values();

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  void check_name_free(std::string_view name) const;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace ef::obs
