#include "baselines/mran.hpp"

#include <cmath>
#include <stdexcept>

namespace ef::baselines {

void MranConfig::validate() const {
  if (epsilon <= 0.0 || epsilon_rms <= 0.0) {
    throw std::invalid_argument("MranConfig: error thresholds must be > 0");
  }
  if (rms_window == 0) throw std::invalid_argument("MranConfig: rms_window must be >= 1");
  if (delta_max < delta_min || delta_min <= 0.0) {
    throw std::invalid_argument("MranConfig: need delta_max >= delta_min > 0");
  }
  if (decay_tau <= 0.0) throw std::invalid_argument("MranConfig: decay_tau must be > 0");
  if (kappa <= 0.0) throw std::invalid_argument("MranConfig: kappa must be > 0");
  if (learning_rate <= 0.0) throw std::invalid_argument("MranConfig: learning_rate > 0");
  if (prune_threshold <= 0.0) throw std::invalid_argument("MranConfig: prune_threshold > 0");
  if (prune_window == 0) throw std::invalid_argument("MranConfig: prune_window must be >= 1");
  if (passes == 0) throw std::invalid_argument("MranConfig: passes must be >= 1");
  if (max_units == 0) throw std::invalid_argument("MranConfig: max_units must be >= 1");
}

Mran::Mran(MranConfig config) : config_(config) { config_.validate(); }

void Mran::fit(const core::WindowDataset& train) {
  units_ = RbfUnits{};
  pruned_ = 0;

  std::vector<double> responses;
  std::deque<double> recent_sq_errors;
  // below_count[k]: consecutive samples unit k's normalised contribution has
  // been below the prune threshold. Indices track units_ (swap-and-pop).
  std::vector<std::size_t> below_count;

  std::size_t sample_index = 0;
  for (std::size_t pass = 0; pass < config_.passes; ++pass) {
    for (std::size_t s = 0; s < train.count(); ++s, ++sample_index) {
      const auto x = train.pattern(s);
      const double target = train.target(s);
      const double y = units_.evaluate(x, &responses);
      const double error = y - target;

      recent_sq_errors.push_back(error * error);
      if (recent_sq_errors.size() > config_.rms_window) recent_sq_errors.pop_front();
      double rms = 0.0;
      for (const double e2 : recent_sq_errors) rms += e2;
      rms = std::sqrt(rms / static_cast<double>(recent_sq_errors.size()));

      const double delta =
          std::max(config_.delta_min,
                   config_.delta_max *
                       std::exp(-static_cast<double>(sample_index) / config_.decay_tau));
      const double dist = units_.nearest_center_distance(x);

      const bool grow = std::abs(error) > config_.epsilon && rms > config_.epsilon_rms &&
                        dist > delta && units_.size() < config_.max_units;
      if (grow) {
        const double width =
            config_.kappa * (std::isfinite(dist) ? dist : config_.delta_max);
        units_.allocate(x, width, -error);
        below_count.push_back(0);
      } else {
        units_.lms_update(x, error, responses, config_.learning_rate);
      }

      // --- pruning ---------------------------------------------------------
      if (units_.size() > 1) {
        // Normalised contribution: |w_k·r_k| / max_j |w_j·r_j| at this input.
        // (responses may be stale by one allocation; re-evaluate cheaply.)
        std::vector<double> contribution(units_.size(), 0.0);
        double largest = 0.0;
        for (std::size_t k = 0; k < units_.size(); ++k) {
          const double r = gaussian_response(units_.centers[k], units_.widths[k], x);
          contribution[k] = std::abs(units_.weights[k] * r);
          largest = std::max(largest, contribution[k]);
        }
        if (largest > 0.0) {
          for (std::size_t k = 0; k < units_.size(); ++k) {
            if (contribution[k] / largest < config_.prune_threshold) {
              ++below_count[k];
            } else {
              below_count[k] = 0;
            }
          }
          // Remove (swap-and-pop) any unit below threshold long enough.
          for (std::size_t k = 0; k < units_.size();) {
            if (below_count[k] >= config_.prune_window) {
              units_.remove(k);
              below_count[k] = below_count.back();
              below_count.pop_back();
              ++pruned_;
            } else {
              ++k;
            }
          }
        }
      }
    }
  }
  fitted_ = true;
}

double Mran::predict(std::span<const double> window) const {
  if (!fitted_) throw std::logic_error("Mran::predict before fit");
  return units_.evaluate(window);
}

}  // namespace ef::baselines
