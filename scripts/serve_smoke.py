#!/usr/bin/env python3
"""Loopback smoke test for efserve (used by CI).

Usage: serve_smoke.py EFSERVE_BINARY MODEL_EFR

Starts efserve on an ephemeral port with fast polling, then exercises the
JSON-lines protocol end to end: ping, cold miss, warm cache hit, explicit
abstention, bad requests (connection must survive), on-disk model swap
(version bump, identical values), and graceful SIGTERM shutdown.
Exits non-zero on the first failed check.
"""
import json
import math
import os
import shutil
import signal
import socket
import subprocess
import sys
import time

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {name}{': ' + str(detail) if detail and not ok else ''}")
    if not ok:
        FAILURES.append(name)


class Client:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        self.reader = self.sock.makefile("r")

    def request(self, line):
        self.sock.sendall((line + "\n").encode())
        response = self.reader.readline().strip()
        try:
            return json.loads(response)
        except json.JSONDecodeError:
            return {"_raw": response}

    def close(self):
        self.sock.close()


def sine_window(phase, length=6, period=25.0):
    return [math.sin(2.0 * math.pi * (phase + t) / period) for t in range(length)]


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    efserve, model_path = sys.argv[1], sys.argv[2]

    proc = subprocess.Popen(
        [efserve, f"demo={model_path}", "--port", "0", "--poll-ms", "100"],
        stdout=subprocess.PIPE,
        text=True,
    )
    port = None
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        print(f"  server: {line.rstrip()}")
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1].split()[0])
            break
    if port is None:
        print("FAIL: server never reported its port")
        proc.kill()
        return 1

    try:
        client = Client(port)

        check("ping", client.request('{"cmd":"ping"}').get("ok") is True)
        models = client.request('{"cmd":"models"}')
        check("models lists demo", models.get("ok") is True and "demo" in str(models))

        # Cold miss on a window the demo model (noisy sine) should cover.
        # Try a few phases; the trained model covers ~95% of the attractor.
        covered = None
        for phase in range(0, 25, 3):
            window = sine_window(phase)
            r = client.request(json.dumps({"model": "demo", "window": window}))
            if r.get("ok") and not r.get("abstain"):
                covered = (window, r)
                break
        check("cold miss returns a value", covered is not None)
        if covered is None:
            raise SystemExit(1)
        window, cold = covered
        check("cold miss is uncached", cold.get("cached") is False, cold)
        check("value is finite", math.isfinite(cold.get("value", math.nan)), cold)
        check("votes reported", cold.get("votes", 0) >= 1, cold)

        # Warm hit: identical request, identical value, cached:true.
        warm = client.request(json.dumps({"model": "demo", "window": window}))
        check("warm hit is cached", warm.get("cached") is True, warm)
        check("warm hit value identical", warm.get("value") == cold.get("value"), warm)

        # Explicit abstention: windows far outside the training attractor.
        abstained = None
        for probe in ([50.0] * 6, [-50.0] * 6, [1e6] * 6):
            r = client.request(json.dumps({"model": "demo", "window": probe}))
            if r.get("ok") and r.get("abstain"):
                abstained = r
                break
        check("uncovered window abstains explicitly", abstained is not None)
        if abstained:
            check("abstention has no value field", "value" not in abstained, abstained)
            check("abstention reports zero votes", abstained.get("votes") == 0, abstained)

        # Bad requests: ok:false with a reason, connection stays usable.
        for bad in (
            "this is not json",
            '{"model":"no-such-model","window":[0.1]}',
            '{"model":"demo","window":[0.1]}',          # wrong window length
            '{"model":"demo","window":[0.1],"bogus":1}',  # unknown field
            '{"model":"demo"}',                          # missing window
        ):
            r = client.request(bad)
            check(f"bad request rejected ({bad[:24]}...)",
                  r.get("ok") is False and r.get("error"), r)
        check("connection survives bad requests",
              client.request('{"cmd":"ping"}').get("ok") is True)

        # Hot reload: rewrite the model file in place (same rules, new
        # mtime); the server must bump the version and keep answering with
        # identical values — zero failed requests across the swap.
        swap = model_path + ".swap"
        shutil.copyfile(model_path, swap)
        os.replace(swap, model_path)  # atomic publish, fresh mtime
        reloaded = None
        for _ in range(50):
            time.sleep(0.1)
            r = client.request(json.dumps(
                {"model": "demo", "window": window, "cache": False}))
            if not r.get("ok"):
                check("request during reload", False, r)
                break
            if r.get("version", 1) >= 2:
                reloaded = r
                break
        check("model hot-reloaded (version bumped)", reloaded is not None)
        if reloaded:
            check("reloaded value identical", reloaded.get("value") == cold.get("value"),
                  reloaded)

        stats = client.request('{"cmd":"stats"}')
        check("stats", stats.get("ok") is True, stats)

        client.close()
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            check("graceful shutdown", False, "timed out")
    check("clean exit code", proc.returncode == 0, proc.returncode)

    if FAILURES:
        print(f"{len(FAILURES)} check(s) failed: {FAILURES}")
        return 1
    print("all serve smoke checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
