// libFuzzer target: the CSV series loader on hostile bytes.
#include "harness/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  return ef::fuzz::csv_load(data, size);
}
