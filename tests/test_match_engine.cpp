// Tests for core/match_engine.hpp: parallel path must agree bit-for-bit with
// the serial reference on datasets large enough to trigger chunking.
#include "core/match_engine.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "series/timeseries.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using ef::core::Interval;
using ef::core::MatchEngine;
using ef::core::Rule;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

TimeSeries random_series(std::size_t n, std::uint64_t seed) {
  ef::util::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(0.0, 1.0);
  return TimeSeries(std::move(v));
}

Rule random_rule(std::size_t d, std::uint64_t seed) {
  ef::util::Rng rng(seed);
  std::vector<Interval> genes;
  for (std::size_t j = 0; j < d; ++j) {
    if (rng.bernoulli(0.2)) {
      genes.push_back(Interval::wildcard());
      continue;
    }
    double a = rng.uniform(0.0, 1.0);
    double b = rng.uniform(0.0, 1.0);
    if (a > b) std::swap(a, b);
    // Widen to make matches reasonably likely.
    genes.emplace_back(std::max(0.0, a - 0.3), std::min(1.0, b + 0.3));
  }
  return Rule(std::move(genes));
}

TEST(MatchEngine, SerialFindsKnownMatches) {
  // Ramp 0..19, rule: first value in [3,5] → windows starting at 3,4,5.
  std::vector<double> v(20);
  std::iota(v.begin(), v.end(), 0.0);
  const TimeSeries s(std::move(v));
  const WindowDataset data(s, 2, 1);
  const MatchEngine engine(data);
  const Rule r({Interval(3, 5), Interval::wildcard()});
  const auto matches = engine.match_indices_serial(r);
  EXPECT_EQ(matches, (std::vector<std::size_t>{3, 4, 5}));
}

TEST(MatchEngine, DimensionMismatchMatchesNothing) {
  const TimeSeries s = random_series(100, 1);
  const WindowDataset data(s, 4, 1);
  const MatchEngine engine(data);
  const Rule r({Interval::wildcard(), Interval::wildcard()});  // D=2 vs dataset D=4
  EXPECT_TRUE(engine.match_indices(r).empty());
  EXPECT_EQ(engine.match_count(r), 0u);
}

TEST(MatchEngine, ParallelAgreesWithSerialLargeDataset) {
  // 50 000 windows: well past the parallel grain.
  const TimeSeries s = random_series(50010, 2);
  const WindowDataset data(s, 8, 2);
  ef::util::ThreadPool pool(4);
  const MatchEngine engine(data, &pool);

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Rule r = random_rule(8, 100 + seed);
    const auto serial = engine.match_indices_serial(r);
    const auto parallel = engine.match_indices(r);
    ASSERT_EQ(parallel, serial) << "rule seed " << seed;
    EXPECT_EQ(engine.match_count(r), serial.size());
  }
}

TEST(MatchEngine, ParallelResultSortedAscending) {
  const TimeSeries s = random_series(30000, 3);
  const WindowDataset data(s, 5, 1);
  ef::util::ThreadPool pool(8);
  const MatchEngine engine(data, &pool);
  const Rule r = random_rule(5, 7);
  const auto matches = engine.match_indices(r);
  for (std::size_t i = 1; i < matches.size(); ++i) EXPECT_LT(matches[i - 1], matches[i]);
}

TEST(MatchEngine, AllWildcardMatchesEverything) {
  const TimeSeries s = random_series(20000, 4);
  const WindowDataset data(s, 6, 3);
  const MatchEngine engine(data);
  const Rule r({Interval::wildcard(), Interval::wildcard(), Interval::wildcard(),
                Interval::wildcard(), Interval::wildcard(), Interval::wildcard()});
  EXPECT_EQ(engine.match_count(r), data.count());
  EXPECT_EQ(engine.match_indices(r).size(), data.count());
}

TEST(MatchEngine, ImpossibleRuleMatchesNothing) {
  const TimeSeries s = random_series(20000, 5);
  const WindowDataset data(s, 4, 1);
  const MatchEngine engine(data);
  const Rule r({Interval(5.0, 6.0), Interval::wildcard(), Interval::wildcard(),
                Interval::wildcard()});  // values live in [0,1]
  EXPECT_EQ(engine.match_count(r), 0u);
}

TEST(MatchEngine, SmallDatasetUsesSerialPathCorrectly) {
  const TimeSeries s = random_series(50, 6);
  const WindowDataset data(s, 3, 1);
  ef::util::ThreadPool pool(4);
  const MatchEngine engine(data, &pool);
  const Rule r = random_rule(3, 8);
  EXPECT_EQ(engine.match_indices(r), engine.match_indices_serial(r));
}

TEST(MatchEngine, NullPoolUsesSharedPool) {
  const TimeSeries s = random_series(30000, 7);
  const WindowDataset data(s, 4, 1);
  const MatchEngine engine(data, nullptr);
  const Rule r = random_rule(4, 9);
  EXPECT_EQ(engine.match_indices(r), engine.match_indices_serial(r));
}

}  // namespace
