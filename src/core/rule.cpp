#include "core/rule.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace ef::core {

double Rule::fitness() const noexcept {
  return predicting_ ? predicting_->fitness : -std::numeric_limits<double>::infinity();
}

double Rule::forecast(std::span<const double> window_values) const {
  if (!predicting_) throw std::logic_error("Rule::forecast: rule not evaluated");
  return predicting_->fit.predict(window_values);
}

std::size_t Rule::specificity() const noexcept {
  std::size_t n = 0;
  for (const auto& g : genes_) {
    if (!g.is_wildcard()) ++n;
  }
  return n;
}

std::string Rule::encode() const {
  std::ostringstream out;
  out << '(';
  for (std::size_t i = 0; i < genes_.size(); ++i) {
    if (i) out << ", ";
    if (genes_[i].is_wildcard()) {
      out << "*, *";
    } else {
      out << genes_[i].lo() << ", " << genes_[i].hi();
    }
  }
  if (predicting_) {
    out << " | p=" << predicting_->prediction() << ", e=" << predicting_->error();
  }
  out << ')';
  return out.str();
}

Rule Rule::parse(const std::string& text) {
  // Accept "(a, b, *, *, c, d ...)" optionally followed by "| p=…, e=…)".
  const auto open = text.find('(');
  if (open == std::string::npos) throw std::invalid_argument("Rule::parse: missing '('");
  auto end = text.find('|', open);
  if (end == std::string::npos) end = text.find(')', open);
  if (end == std::string::npos) throw std::invalid_argument("Rule::parse: missing ')'");

  std::vector<std::string> tokens;
  {
    std::string token;
    std::istringstream body(text.substr(open + 1, end - open - 1));
    while (std::getline(body, token, ',')) {
      // trim
      const auto first = token.find_first_not_of(" \t");
      const auto last = token.find_last_not_of(" \t");
      if (first == std::string::npos) continue;
      tokens.push_back(token.substr(first, last - first + 1));
    }
  }
  if (tokens.empty() || tokens.size() % 2 != 0) {
    throw std::invalid_argument("Rule::parse: expected an even number of bounds, got " +
                                std::to_string(tokens.size()));
  }

  std::vector<Interval> genes;
  genes.reserve(tokens.size() / 2);
  for (std::size_t i = 0; i < tokens.size(); i += 2) {
    const bool lo_wild = tokens[i] == "*";
    const bool hi_wild = tokens[i + 1] == "*";
    if (lo_wild != hi_wild) {
      throw std::invalid_argument("Rule::parse: half-wildcard gene at position " +
                                  std::to_string(i / 2));
    }
    if (lo_wild) {
      genes.push_back(Interval::wildcard());
    } else {
      try {
        genes.emplace_back(std::stod(tokens[i]), std::stod(tokens[i + 1]));
      } catch (const std::exception&) {
        throw std::invalid_argument("Rule::parse: bad bounds '" + tokens[i] + "', '" +
                                    tokens[i + 1] + "'");
      }
    }
  }
  return Rule(std::move(genes));
}

}  // namespace ef::core
