// fuzz/harness/harness.hpp — the fuzz entry points, compiler-agnostic.
//
// Each function has the libFuzzer contract (return 0, abort() on an invariant
// violation) but a plain name, so the same code drives three consumers:
//
//   * the libFuzzer binaries (fuzz/targets/fuzz_*.cpp) under Clang with
//     -fsanitize=fuzzer,address,undefined,
//   * the standalone replayer (fuzz/replay_main.cpp) for reproducing a crash
//     artifact on any compiler,
//   * the corpus-replay gtest (tests/test_fuzz_corpus.cpp) that runs every
//     committed seed on every build, fuzzer-capable or not.
//
// Harnesses must be deterministic and leak-free per call: libFuzzer runs
// them millions of times in-process and LeakSanitizer attributes any growth
// to the harness.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ef::fuzz {

/// serve/json.hpp: parse → dump → parse must be a fixed point, and every
/// rejection must carry a reason.
int json_roundtrip(const std::uint8_t* data, std::size_t size);

/// core::RuleSystem::load on hostile .efr bytes: throws std::runtime_error
/// or yields a system that survives save/load and a forecast.
int efr_load(const std::uint8_t* data, std::size_t size);

/// fleet::FleetReader::from_bytes on hostile .efr v2 container bytes: throws
/// std::runtime_error, or yields a validated index (strictly sorted,
/// binary-search self-consistent) whose materialisable models survive a v1
/// save/load round-trip and a forecast.
int efr2_load(const std::uint8_t* data, std::size_t size);

/// serve::parse_request on one JSON-lines request; the error envelope built
/// from any parse failure must itself be valid protocol JSON.
int protocol_line(const std::uint8_t* data, std::size_t size);

/// series::read_series_csv on hostile CSV bytes: parses or throws
/// std::runtime_error, never crashes or hangs.
int csv_load(const std::uint8_t* data, std::size_t size);

}  // namespace ef::fuzz
