// mutation.hpp — interval-gene mutation (paper §3.1).
//
// "This mutation process consists of enlargement, shrink or moving up or
// down the interval encoded by the gene." We add a low-probability wildcard
// toggle (set a gene to '*' / re-materialise a '*'), which the encoding
// implies but the operator list omits — without it wildcards could never
// appear after initialisation. All steps are sized relative to the
// variable's full range so the operator is scale-free across datasets
// (centimetres for Venice, [0,1] elsewhere).
#pragma once

#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/rule.hpp"
#include "util/rng.hpp"

namespace ef::core {

/// The four interval edits named by the paper plus the wildcard toggle.
enum class MutationOp { kEnlarge, kShrink, kShiftUp, kShiftDown, kToggleWildcard };

/// Apply `op` to a single gene. `range_lo/range_hi` bound the variable;
/// `step` is the absolute edit magnitude. Results are clamped to the range
/// and always satisfy lo <= hi (a shrink below zero width collapses to a
/// point interval at the midpoint). Exposed for direct unit testing.
[[nodiscard]] Interval mutate_gene(const Interval& gene, MutationOp op, double step,
                                   double range_lo, double range_hi, util::Rng& rng);

/// Mutate a rule in place: each gene independently mutates with probability
/// config.mutation_prob; the op is uniform over {enlarge, shrink, up, down}
/// except that with probability config.wildcard_toggle_prob the op is the
/// wildcard toggle instead. Invalidates the predicting part.
void mutate_rule(Rule& rule, const WindowDataset& data, const EvolutionConfig& config,
                 util::Rng& rng);

}  // namespace ef::core
