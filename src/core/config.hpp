// config.hpp — all tunables of the evolutionary rule system in one place.
//
// Defaults follow the paper where it states values (population 100,
// 3-round tournament, D = 24 for the natural series) and sensible choices
// where it does not (mutation rates, EMAX per experiment — see DESIGN.md §5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/match_backend.hpp"

namespace ef::core {

/// Phenotypic distance used by crowding replacement (DESIGN.md §5.2).
enum class DistanceMetric {
  kPrediction,       ///< |p_A − p_B| on the scalar prediction value (default)
  kConditionOverlap, ///< 1 − mean per-gene overlap fraction of the condition boxes
  kMatchedJaccard,   ///< 1 − Jaccard similarity of matched training-window sets
};

[[nodiscard]] constexpr const char* to_string(DistanceMetric m) noexcept {
  switch (m) {
    case DistanceMetric::kPrediction: return "prediction";
    case DistanceMetric::kConditionOverlap: return "condition_overlap";
    case DistanceMetric::kMatchedJaccard: return "matched_jaccard";
  }
  return "?";
}

/// Population initialisation strategy (Ablation A).
enum class InitStrategy {
  kOutputStratified,  ///< paper §3.2: one rule per output sub-interval
  kUniformRandom,     ///< random boxes over the input range (baseline for ablation)
};

/// Replacement strategy (Ablation B).
enum class ReplacementStrategy {
  kCrowding,      ///< paper §3.3: replace phenotypically-nearest if fitter
  kReplaceWorst,  ///< replace the least-fit individual if fitter
  kRandom,        ///< replace a random individual if fitter
};

/// Parameters of one evolutionary execution.
struct EvolutionConfig {
  std::size_t population_size = 100;
  std::size_t generations = 5000;

  /// Fitness: fitness = N_R·EMAX − e_R when N_R > 1 and e_R < EMAX,
  /// else f_min. EMAX is in target units (cm for Venice, [0,1] elsewhere).
  double emax = 0.1;
  double f_min = -1.0;

  /// Tournament rounds (paper: "three rounds trials").
  std::size_t tournament_rounds = 3;

  /// Per-gene mutation probability and relative step (fraction of the
  /// variable's full range used to size enlarge/shrink/shift steps).
  double mutation_prob = 0.15;
  double mutation_scale = 0.1;
  /// Probability that a mutation event turns the gene into a wildcard /
  /// re-materialises a wildcard into a concrete interval.
  double wildcard_toggle_prob = 0.05;

  DistanceMetric distance = DistanceMetric::kPrediction;
  InitStrategy init = InitStrategy::kOutputStratified;
  ReplacementStrategy replacement = ReplacementStrategy::kCrowding;

  /// Match-kernel implementation used by rule evaluation. Every backend
  /// produces bit-identical match sets, so this is purely a throughput knob;
  /// EVOFORECAST_MATCH_BACKEND in the environment overrides it at run time
  /// (see resolve_match_backend). kAuto resolves to the best backend the
  /// CPU supports — currently the rule-major batched kernel, whose SIMD
  /// inner loops self-dispatch between AVX2/SSE2/scalar.
  MatchBackend match_backend = MatchBackend::kAuto;

  /// Evaluate whole populations through Evaluator::evaluate_all (one
  /// rule-major plane build + one window pass per batch, scoring fanned out
  /// across the pool) wherever the engine structure allows: initial
  /// populations, warm-start realignment, generational offspring cohorts.
  /// false restores the pre-batching per-rule loop — an ablation/rollback
  /// switch; results are bit-identical either way, only speed differs.
  bool batched_fitness = true;

  std::uint64_t seed = 1;

  /// Emit a telemetry record every this many generations (0 = off).
  std::size_t telemetry_stride = 0;

  /// Validate invariants; throws std::invalid_argument with the offending
  /// field name. Call before running — configs travel through CLI parsing.
  void validate() const {
    const auto fail = [](const std::string& what) {
      throw std::invalid_argument("EvolutionConfig: " + what);
    };
    if (population_size < 2) fail("population_size must be >= 2");
    if (emax <= 0.0) fail("emax must be > 0");
    if (tournament_rounds == 0) fail("tournament_rounds must be >= 1");
    if (mutation_prob < 0.0 || mutation_prob > 1.0) fail("mutation_prob out of [0,1]");
    if (mutation_scale <= 0.0) fail("mutation_scale must be > 0");
    if (wildcard_toggle_prob < 0.0 || wildcard_toggle_prob > 1.0) {
      fail("wildcard_toggle_prob out of [0,1]");
    }
  }
};

/// Parameters of the multi-execution outer loop (paper §3.4).
struct RuleSystemConfig {
  EvolutionConfig evolution;

  /// Stop re-running once training coverage reaches this percentage…
  double coverage_target_percent = 97.0;
  /// …or after this many executions, whichever comes first.
  std::size_t max_executions = 5;

  /// Drop rules whose fitness is f_min (never matched / error ≥ EMAX) before
  /// adding a population to the final system.
  bool discard_unfit = true;

  void validate() const {
    evolution.validate();
    if (coverage_target_percent < 0.0 || coverage_target_percent > 100.0) {
      throw std::invalid_argument("RuleSystemConfig: coverage_target_percent out of [0,100]");
    }
    if (max_executions == 0) {
      throw std::invalid_argument("RuleSystemConfig: max_executions must be >= 1");
    }
  }
};

}  // namespace ef::core
