// serve/protocol.hpp — the JSON-lines wire protocol of efserve (v1 + v2).
//
// One request per line, one response per line, many requests in flight per
// connection (the reactor answers strictly in request order). Requests are
// flat JSON objects; the parser below handles exactly the JSON subset the
// protocol needs (objects, arrays of numbers, strings, numbers, booleans)
// and rejects everything else loudly — a malformed line yields an ok=false
// response, never a crash or a silent default.
//
// Request fields (see docs/API.md for the full verb/field matrix):
//   "cmd"     : "predict" (default) | "ping" | "models" | "stats" |
//               "metrics" | "events" | "trace" | "observe" | "quality"
//   "v"       : protocol version, 1 or 2 (default 1)
//   "id"      : string or number, echoed in the response    [v2]
//   "model"   : model name (default "default"; for "quality" omitting it
//               means every tracked model)
//   "window"  : array of numbers, most recent value last    [predict]
//   "horizon" : integer >= 1 (default 1)                    [predict]
//   "agg"     : "mean" | "fitness_weighted" | "median" |
//               "best_rule" | "inverse_error" (default "mean")
//   "cache"   : boolean (default true)                      [predict]
//   "value"   : number — the realized value (required)      [observe]
//   "t"       : integer >= 0 observation tick; omitted =
//               the model's current tick + 1                [observe]
//
// Versioning: a request carrying "v":2 — or an "id", which implies v2 —
// gets a v2 response: `"v":2` and the echoed `"id"` immediately after
// "ok", and errors as a structured envelope with a stable machine-readable
// code. Requests with neither field get byte-identical v1 responses, so
// existing clients never see a changed byte.
//
// v1 predict : {"ok":true,"model":...,"version":N,"horizon":N,
//              "abstain":false,"value":V,"votes":N,"cached":false}
// v2 predict : {"ok":true,"v":2,"id":7,"model":...}           (rest as v1),
//              plus "interval":[V-e,V+e] after "value" when the forecast
//              carries an error bound (never on abstention; v1 stays
//              byte-identical and never gains the field)
// v1 error   : {"ok":false,"error":"reason"}
// v2 error   : {"ok":false,"v":2,"id":7,
//              "error":{"code":"unknown_model","message":"reason"}}
// Abstention: same envelope with "abstain":true and no "value" field —
//   abstentions are explicit, per the paper's coverage semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "serve/error.hpp"
#include "serve/service.hpp"

namespace ef::serve {

/// Wire-level request: service PredictRequest plus the non-predict commands
/// and the protocol-v2 envelope fields.
struct Request {
  enum class Cmd {
    kPredict,
    kPing,
    kModels,
    kStats,
    kMetrics,
    kEvents,
    kTrace,
    kObserve,
    kQuality,
  };
  Cmd cmd = Cmd::kPredict;
  PredictRequest predict;
  /// "observe" payload: the realized value and its optional explicit tick.
  struct ObserveFields {
    double value = 0.0;
    std::optional<std::uint64_t> t;
  };
  ObserveFields observe;
  /// Whether the request carried an explicit "model" — "quality" without
  /// one reports every tracked model.
  bool has_model = false;
  /// Response envelope version: 2 when the request carried "v":2 or an "id".
  int version = 1;
  /// The request's "id", pre-serialised for verbatim echo ("\"abc\"", "17");
  /// empty = no id.
  std::string id_json;
};

/// Structured parse failure: a stable machine-readable code plus the
/// human-readable reason. The envelope (version/id) is best-effort — when
/// the id was parsed before the failure it is echoed even on errors.
struct ProtocolError {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
  int version = 1;
  std::string id_json;
};

/// Parse one JSON-lines request. Returns nullopt and fills `error` on
/// malformed input (bad JSON, wrong field types, unknown cmd/agg).
[[nodiscard]] std::optional<Request> parse_request(std::string_view line,
                                                   ProtocolError& error);

/// The `,"v":2,"id":...` splice for a v2 response ("" for v1). Response
/// builders insert it right after `{"ok":...`.
[[nodiscard]] std::string envelope_json(int version, std::string_view id_json);
[[nodiscard]] inline std::string envelope_json(const Request& request) {
  return envelope_json(request.version, request.id_json);
}

/// Serialise a predict response under the request's envelope (one line, no
/// trailing newline). ok=false responses route through the error envelope
/// using the response's code.
[[nodiscard]] std::string to_json(const PredictResponse& response,
                                  const Request& request);
/// v1 serialisation (in-process callers, tests).
[[nodiscard]] std::string to_json(const PredictResponse& response);

/// Error-envelope helpers. The v1 form keeps the pre-v2 bare-string bytes;
/// the coded form emits the structured envelope when version >= 2.
[[nodiscard]] std::string error_json(std::string_view reason);
[[nodiscard]] std::string error_json(ErrorCode code, std::string_view reason,
                                     int version = 1, std::string_view id_json = {});
[[nodiscard]] inline std::string error_json(const ProtocolError& error) {
  return error_json(error.code, error.message, error.version, error.id_json);
}

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Parse an aggregation name as used by the protocol ("mean", "median", …).
[[nodiscard]] std::optional<core::Aggregation> parse_aggregation(std::string_view name);

}  // namespace ef::serve
