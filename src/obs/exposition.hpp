// obs/exposition.hpp — Prometheus text exposition (format 0.0.4) for the
// metrics registry.
//
// Renders a MetricsSnapshot — and optionally a WindowSnapshot — into the
// plain-text format Prometheus scrapes:
//
//   * counters  → `<prefix><name>_total` with a `# TYPE ... counter` line
//   * gauges    → `<prefix><name>` typed gauge
//   * histograms→ cumulative `_bucket{le="..."}` series ending at
//                 `le="+Inf"`, plus `_sum` and `_count`
//   * windowed  → per-instrument gauges derived from the collector:
//                 `<name>_window_rate`, `<name>_window{q="0.50"}` …, and a
//                 single `evoforecast_window_seconds` describing the window
//   * build     → `evoforecast_build_info{commit=...,compiler=...,...} 1`
//
// Metric names are sanitised to [a-zA-Z0-9_:] (every other byte becomes
// '_'), so the registry's dotted names ("serve.request_us") come out as
// Prometheus-legal ("evoforecast_serve_request_us"). Exposition is a pure
// read of snapshots — no registry locks are held while formatting.
//
// Labelled series: subsystems with bounded-cardinality dimensions (the
// serve layer's per-model quality series) render through the Label helpers
// below — values escaped per the format, label names emitted in sorted
// order so a family's label sets are byte-stable across scrapes — and hook
// into prometheus_text() via the provider registry, so both GET /metrics
// and the "metrics" verb pick them up without the obs layer knowing who
// provides what. Providers must cap their own cardinality (top-K + an
// aggregate, never one series per unbounded key).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace ef::obs {

struct ExpositionOptions {
  std::string prefix = "evoforecast_";
  bool build_info_series = true;  ///< emit evoforecast_build_info{...} 1
  bool providers = true;          ///< append registered provider sections
};

/// One label of a labelled sample. Values are escaped at render time;
/// names must already be legal ([a-zA-Z_][a-zA-Z0-9_]*).
struct Label {
  std::string name;
  std::string value;
};

/// Escape a label VALUE per the exposition format: backslash, double quote
/// and newline; everything else passes through.
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Append one `family{a="x",b="y"} value` line. Labels are sorted by name
/// so every sample of a family carries a byte-identical label-name order
/// (the stability check_prometheus.py enforces). `family` must already be a
/// legal, prefixed metric name.
void labeled_sample(std::string& out, const std::string& family,
                    std::vector<Label> labels, double value);

/// A provider appends fully-formed exposition lines (# TYPE + samples) for
/// series the registry does not know about. Invoked by prometheus_text()
/// after the built-in sections, under the provider-registry lock — keep it
/// a pure snapshot+format, never re-entering exposition.
using ExpositionProvider = std::function<void(std::string& out, const ExpositionOptions&)>;

/// Register a provider; returns a handle for remove_exposition_provider.
/// Providers MUST be removed before anything they capture is destroyed.
[[nodiscard]] std::uint64_t add_exposition_provider(ExpositionProvider provider);
void remove_exposition_provider(std::uint64_t id);

/// Sanitise one metric name: apply the prefix, map bytes outside
/// [a-zA-Z0-9_:] to '_', and guard a leading digit with '_'.
[[nodiscard]] std::string prometheus_name(std::string_view name,
                                          const ExpositionOptions& options = {});

/// Render a snapshot (and optionally a windowed view) as Prometheus text.
/// `window` may be nullptr to skip the windowed series.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot,
                                        const WindowSnapshot* window = nullptr,
                                        const ExpositionOptions& options = {});

/// Convenience: snapshot Registry::global(), fold in the global collector's
/// window when it has one (>= 2 frames), render.
[[nodiscard]] std::string prometheus_text(const ExpositionOptions& options = {});

}  // namespace ef::obs
