#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "harness.hpp"
#include "serve/json.hpp"

namespace ef::fuzz {
namespace {

[[noreturn]] void die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "json_roundtrip invariant violated: %s: %s\n", what, detail.c_str());
  std::abort();
}

}  // namespace

int json_roundtrip(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  std::string error;
  const std::optional<serve::json::Value> value = serve::json::parse(text, error);
  if (!value) {
    // A rejection with no reason would leave protocol clients with an
    // unexplained failure.
    if (error.empty()) die("parse failed without an error message", std::string(text));
    return 0;
  }

  // dump() must emit text the parser accepts back, and a second round trip
  // must be byte-identical (dump is a fixed point over parsed values).
  const std::string once = serve::json::dump(*value);
  std::string error2;
  const std::optional<serve::json::Value> reparsed = serve::json::parse(once, error2);
  if (!reparsed) die(("dump output rejected by parse: " + error2).c_str(), once);
  const std::string twice = serve::json::dump(*reparsed);
  if (once != twice) die("dump/parse/dump not a fixed point", once + " vs " + twice);
  return 0;
}

}  // namespace ef::fuzz
