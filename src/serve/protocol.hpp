// serve/protocol.hpp — the JSON-lines wire protocol of efserve.
//
// One request per line, one response per line. Requests are flat JSON
// objects; the parser below handles exactly the JSON subset the protocol
// needs (objects, arrays of numbers, strings, numbers, booleans) and
// rejects everything else loudly — a malformed line yields an ok=false
// response, never a crash or a silent default.
//
// Request fields:
//   "cmd"     : "predict" (default) | "ping" | "models" | "stats" |
//               "metrics" | "events" | "trace"
//   "model"   : model name (default "default")
//   "window"  : array of numbers, most recent value last   [predict]
//   "horizon" : integer >= 1 (default 1)                   [predict]
//   "agg"     : "mean" | "fitness_weighted" | "median" |
//               "best_rule" | "inverse_error" (default "mean")
//   "cache"   : boolean (default true)                     [predict]
//
// Response (predict): {"ok":true,"model":...,"version":N,"horizon":N,
//   "abstain":false,"value":V,"votes":N,"cached":false}
// Abstention: same envelope with "abstain":true and no "value" field —
//   abstentions are explicit, per the paper's coverage semantics.
// Error:     {"ok":false,"error":"reason"}
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "serve/service.hpp"

namespace ef::serve {

/// Wire-level request: service PredictRequest plus the non-predict commands.
struct Request {
  enum class Cmd { kPredict, kPing, kModels, kStats, kMetrics, kEvents, kTrace };
  Cmd cmd = Cmd::kPredict;
  PredictRequest predict;
};

/// Parse one JSON-lines request. Returns nullopt and fills `error` on
/// malformed input (bad JSON, wrong field types, unknown cmd/agg).
[[nodiscard]] std::optional<Request> parse_request(std::string_view line, std::string& error);

/// Serialise a predict response (one line, no trailing newline).
[[nodiscard]] std::string to_json(const PredictResponse& response);

/// Error-envelope helper for protocol-level failures.
[[nodiscard]] std::string error_json(std::string_view reason);

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Parse an aggregation name as used by the protocol ("mean", "median", …).
[[nodiscard]] std::optional<core::Aggregation> parse_aggregation(std::string_view name);

}  // namespace ef::serve
