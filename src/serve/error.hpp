// serve/error.hpp — stable machine-readable protocol error codes.
//
// Protocol v2 replaced bare error strings with a structured envelope
// {"error":{"code","message"}}. The codes below are the public contract:
// clients branch on `code` (stable, append-only), humans read `message`
// (free to improve between releases). v1 responses keep the bare string,
// so the code enum lives beside the response structs rather than inside
// the serializer.
#pragma once

#include <cstdint>
#include <string_view>

namespace ef::serve {

/// Append-only: codes are wire contract, never renumber or rename.
enum class ErrorCode : std::uint8_t {
  kNone = 0,         ///< no error (response is ok:true)
  kBadJson,          ///< request line is not valid protocol JSON
  kBadRequest,       ///< well-formed JSON, invalid field type or value
  kUnknownField,     ///< request carries a field the protocol doesn't know
  kUnknownCmd,       ///< "cmd" names no verb
  kUnknownModel,     ///< "model" names no registered model or container series
  kBadWindow,        ///< window empty or longer than the service allows
  kWindowMismatch,   ///< window length != the model's expected window
  kBadHorizon,       ///< horizon 0 or above the service cap
  kLineTooLong,      ///< request line blew max_line_bytes
  kShuttingDown,     ///< service is draining; no new requests accepted
  kInternal,         ///< prediction path threw (bug or resource exhaustion)
};

/// The stable wire spelling of a code ("unknown_model", ...).
[[nodiscard]] constexpr std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadJson: return "bad_json";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownField: return "unknown_field";
    case ErrorCode::kUnknownCmd: return "unknown_cmd";
    case ErrorCode::kUnknownModel: return "unknown_model";
    case ErrorCode::kBadWindow: return "bad_window";
    case ErrorCode::kWindowMismatch: return "window_mismatch";
    case ErrorCode::kBadHorizon: return "bad_horizon";
    case ErrorCode::kLineTooLong: return "line_too_long";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

}  // namespace ef::serve
