#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "harness.hpp"
#include "series/csv.hpp"

namespace ef::fuzz {

int csv_load(const std::uint8_t* data, std::size_t size) {
  // First byte selects the column (small range keeps coverage on the
  // parsing, not on column-out-of-range errors); the rest is the CSV text.
  std::size_t column = 0;
  if (size > 0) {
    column = data[0] % 3;
    ++data;
    --size;
  }
  std::istringstream in(std::string(reinterpret_cast<const char*>(data), size));
  try {
    const series::TimeSeries ts = series::read_series_csv(in, column, ',', "fuzz");
    // Parsed values must be real doubles — the loader's contract is that a
    // cell either parses or the row is rejected, and downstream training
    // assumes no silent NaN/Inf injection beyond what the text spells out.
    for (const double v : ts.values()) (void)v;
  } catch (const std::runtime_error&) {
    // Hostile input rejected with the documented exception type.
  }
  return 0;
}

}  // namespace ef::fuzz
