// Tests for core/tuning.hpp: bracket handling, monotone-target behaviour,
// argument validation, probe bookkeeping.
#include "core/tuning.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/rule_system.hpp"
#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::EmaxTuningOptions;
using ef::core::EvolutionConfig;
using ef::core::tune_emax;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

TimeSeries noisy_sine(std::size_t n, double noise) {
  ef::util::Rng rng(77);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(static_cast<double>(i) * 0.2) + rng.normal(0.0, noise);
  }
  return TimeSeries(std::move(v));
}

EvolutionConfig base_config() {
  EvolutionConfig cfg;
  cfg.population_size = 20;
  cfg.seed = 3;
  cfg.emax = 1.0;  // overwritten by the tuner
  return cfg;
}

TEST(TuneEmax, ReachesCoverageTarget) {
  const TimeSeries s = noisy_sine(500, 0.05);
  const WindowDataset train(s, 4, 1);
  EmaxTuningOptions options;
  options.coverage_target_percent = 90.0;
  options.pilot_generations = 500;
  const auto result = tune_emax(train, base_config(), options);
  EXPECT_GE(result.achieved_coverage_percent, 90.0);
  EXPECT_GT(result.emax, 0.0);
}

TEST(TuneEmax, TunedEmaxIsTighterThanFullRange) {
  const TimeSeries s = noisy_sine(500, 0.05);
  const WindowDataset train(s, 4, 1);
  EmaxTuningOptions options;
  options.coverage_target_percent = 85.0;
  options.pilot_generations = 500;
  const auto result = tune_emax(train, base_config(), options);
  const double range = train.target_max() - train.target_min();
  EXPECT_LT(result.emax, range);  // bisection found something below the hi bracket
}

TEST(TuneEmax, ProbesRecorded) {
  const TimeSeries s = noisy_sine(300, 0.05);
  const WindowDataset train(s, 4, 1);
  EmaxTuningOptions options;
  options.coverage_target_percent = 85.0;
  options.bisection_steps = 4;
  options.pilot_generations = 200;
  const auto result = tune_emax(train, base_config(), options);
  // hi + lo probes + up to bisection_steps more.
  EXPECT_GE(result.probes.size(), 2u);
  EXPECT_LE(result.probes.size(), 2u + options.bisection_steps);
  for (const auto& [emax, coverage] : result.probes) {
    EXPECT_GT(emax, 0.0);
    EXPECT_GE(coverage, 0.0);
    EXPECT_LE(coverage, 100.0);
  }
}

TEST(TuneEmax, ImpossibleTargetReturnsWidestBudget) {
  // A pure-noise series with a tiny pilot budget and a 100 % target: if the
  // hi bracket misses the target the tuner must return the hi bracket.
  ef::util::Rng rng(5);
  std::vector<double> v(200);
  for (double& x : v) x = rng.uniform(0.0, 1.0);
  const WindowDataset train(TimeSeries(std::move(v)), 6, 1);

  EmaxTuningOptions options;
  options.coverage_target_percent = 100.0;
  options.hi_fraction = 0.02;  // absurdly tight hi bracket
  options.lo_fraction = 0.01;
  options.pilot_generations = 50;
  options.pilot_executions = 1;
  const auto result = tune_emax(train, base_config(), options);
  const double range = train.target_max() - train.target_min();
  EXPECT_NEAR(result.emax, 0.02 * range, 1e-12);
}

TEST(TuneEmax, EasyTargetFindsTightBudget) {
  // Near-noiseless low-amplitude sine: a modest target must be reachable
  // with an EMAX far below the full target range.
  std::vector<double> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 1.0 + 1e-4 * std::sin(static_cast<double>(i));
  }
  const WindowDataset train(TimeSeries(std::move(v)), 3, 1);
  EmaxTuningOptions options;
  options.coverage_target_percent = 50.0;
  options.pilot_generations = 50;
  const auto result = tune_emax(train, base_config(), options);
  const double range = train.target_max() - train.target_min();
  EXPECT_LT(result.emax, 0.3 * range);
  EXPECT_GE(result.achieved_coverage_percent, 50.0);
}

TEST(TuneEmax, ConstantSeriesThrows) {
  const TimeSeries s(std::vector<double>(50, 2.0));
  const WindowDataset train(s, 3, 1);
  EXPECT_THROW((void)tune_emax(train, base_config()), std::invalid_argument);
}

TEST(TuneEmax, BadOptionsThrow) {
  const TimeSeries s = noisy_sine(200, 0.05);
  const WindowDataset train(s, 4, 1);
  EmaxTuningOptions bad;
  bad.lo_fraction = 0.5;
  bad.hi_fraction = 0.1;
  EXPECT_THROW((void)tune_emax(train, base_config(), bad), std::invalid_argument);
  bad = EmaxTuningOptions{};
  bad.coverage_target_percent = 0.0;
  EXPECT_THROW((void)tune_emax(train, base_config(), bad), std::invalid_argument);
  bad = EmaxTuningOptions{};
  bad.coverage_target_percent = 101.0;
  EXPECT_THROW((void)tune_emax(train, base_config(), bad), std::invalid_argument);
}

TEST(TuneEmax, Deterministic) {
  const TimeSeries s = noisy_sine(300, 0.05);
  const WindowDataset train(s, 4, 1);
  EmaxTuningOptions options;
  options.pilot_generations = 300;
  const auto a = tune_emax(train, base_config(), options);
  const auto b = tune_emax(train, base_config(), options);
  EXPECT_DOUBLE_EQ(a.emax, b.emax);
  EXPECT_DOUBLE_EQ(a.achieved_coverage_percent, b.achieved_coverage_percent);
}

}  // namespace
