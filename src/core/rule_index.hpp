// rule_index.hpp — bucketed single-dimension index for fast rule matching.
//
// RuleSystem::predict scans every rule per query: O(R·D). Multi-execution
// unions easily reach R ≈ 500-1000 rules, and production deployments query
// every new sample, so the scan is worth indexing. The observation: a rule
// can only match a window whose value at dimension d lies inside the rule's
// d-th gene. The index picks the most *selective* dimension (smallest mean
// normalised interval width across the rule set, wildcards counting as the
// full range), partitions the value range into B equal buckets and registers
// each rule in the buckets its interval overlaps; a query then inspects only
// bucket(window[d]) — no false negatives by construction, false positives
// filtered by the exact Rule::matches re-check.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/aggregation.hpp"
#include "core/prediction.hpp"
#include "core/rule_system.hpp"

namespace ef::core {

class RuleIndex {
 public:
  /// Build over `system` (which must outlive the index). `value_lo/hi`
  /// bound the expected first-window values (typically the training data's
  /// value range); out-of-range queries fall back to the edge buckets,
  /// which also hold every rule whose interval extends past the range.
  /// Throws std::invalid_argument on hi <= lo or buckets == 0.
  RuleIndex(const RuleSystem& system, double value_lo, double value_hi,
            std::size_t buckets = 64);

  /// Indexed forecast — identical results to system.forecast(window, how):
  /// one candidate scan answers value, fan-in and abstention at once.
  [[nodiscard]] core::Prediction forecast(std::span<const double> window,
                                          Aggregation how = Aggregation::kMean) const;

  /// Batched indexed forecasts over `flat_windows.size() / window` row-major
  /// packed windows, parallel over windows via `pool` (nullptr = shared
  /// pool). Identical element-by-element to forecast(). When the index is
  /// unselective (mean candidate list covering half the rules or more) this
  /// delegates to RuleSystem::forecast_batch, whose rule-outer vectorized
  /// kernels beat an ineffective bucket scan. Throws std::invalid_argument
  /// on window == 0 or a size that is not a multiple of window.
  [[nodiscard]] std::vector<core::Prediction> forecast_batch(
      std::span<const double> flat_windows, std::size_t window,
      Aggregation how = Aggregation::kMean, util::ThreadPool* pool = nullptr) const;

  /// Indexed vote count — identical to system.vote_count(window).
  [[nodiscard]] std::size_t vote_count(std::span<const double> window) const;

  /// Candidate rules for a value at the indexed dimension (tests/inspection).
  [[nodiscard]] std::span<const std::size_t> candidates(double value_at_dimension) const;

  /// Mean candidate-list length over all buckets (indexing effectiveness;
  /// equals the rule count when every rule is wildcard at the indexed
  /// dimension).
  [[nodiscard]] double mean_candidates() const;

  [[nodiscard]] std::size_t buckets() const noexcept { return bucket_rules_.size(); }
  /// The dimension the index chose (most selective across the rule set).
  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }

 private:
  [[nodiscard]] std::size_t bucket_of(double value) const;

  const RuleSystem& system_;
  double lo_;
  double width_;  // per-bucket width
  std::size_t dimension_ = 0;
  std::vector<std::vector<std::size_t>> bucket_rules_;
};

}  // namespace ef::core
