// evoforecast_serve.hpp — opt-in umbrella header for the serving layer.
//
// Deliberately separate from evoforecast.hpp: the serve layer spawns
// threads (model-store poller, micro-batcher dispatcher, TCP accept loop)
// and pulls in sockets, which library consumers doing offline training and
// evaluation never need. Include this header only in processes that host a
// forecast service.
//
//   #include "evoforecast.hpp"        // training + prediction (no threads)
//   #include "evoforecast_serve.hpp"  // + ModelStore, ForecastService, TCP
//
// Typical use:
//
//   ef::serve::ModelStore store;
//   store.add_file("default", "model.efr");
//   store.start_polling(std::chrono::seconds(2));   // hot-reload on mtime
//   ef::serve::ForecastService service(store);
//   const auto response = service.predict({.window = {...}});
//   if (response.ok && !response.abstain) use(response.value);
//
// Layering (each header is also individually includable):
//   model_store   named, versioned models with atomic hot-reload
//   window_cache  sharded LRU over (model tag, horizon, agg, window)
//   batcher       micro-batching of concurrent requests → forecast_batch
//   service       validate → cache → batch → respond, one blocking call
//   protocol      JSON-lines protocol encode/decode (v1 + v2 envelope)
//   reactor       epoll reactor transport (pipelined JSON-lines over TCP)
#pragma once

#include "evoforecast.hpp"  // IWYU pragma: export

#include "serve/batcher.hpp"       // IWYU pragma: export
#include "serve/model_store.hpp"   // IWYU pragma: export
#include "serve/protocol.hpp"      // IWYU pragma: export
#include "serve/reactor.hpp"       // IWYU pragma: export
#include "serve/service.hpp"       // IWYU pragma: export
#include "serve/window_cache.hpp"  // IWYU pragma: export
