#include "obs/exposition.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <utility>

#include "obs/build_info.hpp"

namespace ef::obs {
namespace {

bool legal_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '_' || c == ':';
}

/// Format a double the way Prometheus expects: plain decimal / scientific,
/// "+Inf"/"-Inf"/"NaN" for the specials.
std::string format_value(double x) {
  if (std::isnan(x)) return "NaN";
  if (std::isinf(x)) return x > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

std::string format_value(std::uint64_t x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, x);
  return buf;
}

/// Registered provider sections appended by prometheus_text(). A plain
/// mutex-guarded list: registration is rare (subsystem construction) and
/// scrapes are ~1/s, so holding the lock while providers render keeps a
/// provider from being invoked concurrently with its own removal.
struct ProviderRegistry {
  std::mutex mutex;
  std::vector<std::pair<std::uint64_t, ExpositionProvider>> providers;
  std::uint64_t next_id = 1;

  static ProviderRegistry& instance() {
    static ProviderRegistry registry;
    return registry;
  }
};

void type_line(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void sample(std::string& out, const std::string& name, const std::string& value) {
  out += name;
  out += ' ';
  out += value;
  out += '\n';
}

void histogram_series(std::string& out, const std::string& base, const HistogramStats& stats) {
  type_line(out, base, "histogram");
  // Prometheus buckets are CUMULATIVE: each le bucket counts every
  // observation <= its bound, and le="+Inf" equals _count. The registry's
  // buckets are disjoint, so accumulate while emitting.
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < stats.buckets.size(); ++i) {
    cum += stats.buckets[i];
    const std::string le =
        i < stats.bounds.size() ? format_value(stats.bounds[i]) : std::string("+Inf");
    out += base;
    out += "_bucket{le=\"";
    out += le;
    out += "\"} ";
    out += format_value(cum);
    out += '\n';
  }
  sample(out, base + "_sum", format_value(stats.sum));
  sample(out, base + "_count", format_value(cum));
}

void windowed_series(std::string& out, const WindowSnapshot& window,
                     const ExpositionOptions& options) {
  const std::string window_name = options.prefix + "window_seconds";
  type_line(out, window_name, "gauge");
  sample(out, window_name, format_value(window.window_seconds));

  for (const auto& c : window.counters) {
    const std::string base = prometheus_name(c.name, options) + "_window_rate";
    type_line(out, base, "gauge");
    sample(out, base, format_value(c.per_sec));
  }
  for (const auto& h : window.histograms) {
    const std::string base = prometheus_name(h.name, options);
    const std::string rate = base + "_window_rate";
    type_line(out, rate, "gauge");
    sample(out, rate, format_value(h.per_sec));

    const std::string quantiles = base + "_window";
    type_line(out, quantiles, "gauge");
    const std::pair<const char*, double> qs[] = {
        {"0.50", h.p50}, {"0.90", h.p90}, {"0.99", h.p99}};
    for (const auto& [q, v] : qs) {
      out += quantiles;
      out += "{q=\"";
      out += q;
      out += "\"} ";
      out += format_value(v);
      out += '\n';
    }
  }
}

void build_info_series(std::string& out, const ExpositionOptions& options) {
  const BuildInfo& info = build_info();
  const std::string name = options.prefix + "build_info";
  type_line(out, name, "gauge");
  // labeled_sample sorts the labels, so build_info shares the sorted-order
  // convention every labelled family follows.
  labeled_sample(out, name,
                 {{"commit", std::string(info.git_commit)},
                  {"compiler", std::string(info.compiler)},
                  {"build_type", std::string(info.build_type)},
                  {"obs", info.obs_enabled ? "on" : "off"}},
                 1.0);
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void labeled_sample(std::string& out, const std::string& family,
                    std::vector<Label> labels, double value) {
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.name < b.name; });
  out += family;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += labels[i].name;
    out += "=\"";
    out += escape_label_value(labels[i].value);
    out += '"';
  }
  out += "} ";
  out += format_value(value);
  out += '\n';
}

std::uint64_t add_exposition_provider(ExpositionProvider provider) {
  ProviderRegistry& registry = ProviderRegistry::instance();
  const std::lock_guard lock(registry.mutex);
  const std::uint64_t id = registry.next_id++;
  registry.providers.emplace_back(id, std::move(provider));
  return id;
}

void remove_exposition_provider(std::uint64_t id) {
  ProviderRegistry& registry = ProviderRegistry::instance();
  const std::lock_guard lock(registry.mutex);
  std::erase_if(registry.providers,
                [id](const auto& entry) { return entry.first == id; });
}

std::string prometheus_name(std::string_view name, const ExpositionOptions& options) {
  std::string out = options.prefix;
  if (out.empty() && !name.empty() && name.front() >= '0' && name.front() <= '9') {
    out += '_';
  }
  for (const char c : name) {
    out += legal_name_char(c) ? c : '_';
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot, const WindowSnapshot* window,
                          const ExpositionOptions& options) {
  std::string out;
  out.reserve(4096);

  for (const auto& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name, options) + "_total";
    type_line(out, name, "counter");
    sample(out, name, format_value(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name, options);
    type_line(out, name, "gauge");
    sample(out, name, format_value(g.value));
  }
  for (const auto& h : snapshot.histograms) {
    histogram_series(out, prometheus_name(h.name, options), h.stats);
  }
  if (window != nullptr && window->window_seconds > 0.0) {
    windowed_series(out, *window, options);
  }
  if (options.build_info_series) {
    build_info_series(out, options);
  }
  return out;
}

std::string prometheus_text(const ExpositionOptions& options) {
  const MetricsSnapshot snapshot = Registry::global().snapshot();
  const WindowSnapshot window = WindowedCollector::global().window();
  const WindowSnapshot* window_ptr = window.window_seconds > 0.0 ? &window : nullptr;
  std::string out = to_prometheus(snapshot, window_ptr, options);
  if (options.providers) {
    ProviderRegistry& registry = ProviderRegistry::instance();
    const std::lock_guard lock(registry.mutex);
    for (const auto& [id, provider] : registry.providers) {
      provider(out, options);
    }
  }
  return out;
}

}  // namespace ef::obs
