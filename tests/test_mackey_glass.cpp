// Tests for series/mackey_glass.hpp: integrator correctness (step-halving
// convergence, delay-free closed form), chaos signatures, paper arrangement.
#include "series/mackey_glass.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace {

using ef::series::generate_mackey_glass;
using ef::series::MackeyGlassParams;

TEST(MackeyGlass, Deterministic) {
  const auto a = generate_mackey_glass(500);
  const auto b = generate_mackey_glass(500);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(MackeyGlass, CountRespected) {
  EXPECT_EQ(generate_mackey_glass(1).size(), 1u);
  EXPECT_EQ(generate_mackey_glass(1234).size(), 1234u);
}

TEST(MackeyGlass, FirstSampleIsInitialCondition) {
  MackeyGlassParams p;
  p.initial = 0.9;
  const auto s = generate_mackey_glass(10, p);
  EXPECT_DOUBLE_EQ(s[0], 0.9);
}

TEST(MackeyGlass, InvalidArgumentsThrow) {
  EXPECT_THROW((void)generate_mackey_glass(0), std::invalid_argument);
  MackeyGlassParams bad_dt;
  bad_dt.dt = 0.0;
  EXPECT_THROW((void)generate_mackey_glass(10, bad_dt), std::invalid_argument);
  MackeyGlassParams frac_dt;
  frac_dt.dt = 0.3;  // 1/dt not integer
  EXPECT_THROW((void)generate_mackey_glass(10, frac_dt), std::invalid_argument);
  MackeyGlassParams neg_lambda;
  neg_lambda.lambda = -1.0;
  EXPECT_THROW((void)generate_mackey_glass(10, neg_lambda), std::invalid_argument);
}

// With lambda = 0 and exponent such that s stays near 0, the equation becomes
// the linear ODE ds/dt = −b·s + a·s/(1+s^10) ≈ (a−b)s for tiny s; easier: use
// a = 0 so ds/dt = −b·s with closed form s(t) = s0·e^{−bt}.
TEST(MackeyGlass, PureDecayMatchesClosedForm) {
  MackeyGlassParams p;
  p.a = 0.0;
  p.b = 0.1;
  p.lambda = 0.0;
  p.initial = 1.0;
  p.dt = 0.1;
  const auto s = generate_mackey_glass(50, p);
  for (std::size_t t = 0; t < s.size(); ++t) {
    EXPECT_NEAR(s[t], std::exp(-0.1 * static_cast<double>(t)), 1e-6);
  }
}

// RK4 global error is O(dt^4): halving dt must shrink the difference to a
// fine-grid reference dramatically. Short horizon (before chaotic
// sensitivity amplifies roundoff differences).
TEST(MackeyGlass, StepHalvingConverges) {
  MackeyGlassParams coarse;
  coarse.dt = 0.5;
  MackeyGlassParams fine;
  fine.dt = 0.25;
  MackeyGlassParams reference;
  reference.dt = 0.05;

  const std::size_t n = 60;
  const auto sc = generate_mackey_glass(n, coarse);
  const auto sf = generate_mackey_glass(n, fine);
  const auto sr = generate_mackey_glass(n, reference);

  double err_coarse = 0.0;
  double err_fine = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err_coarse = std::max(err_coarse, std::abs(sc[i] - sr[i]));
    err_fine = std::max(err_fine, std::abs(sf[i] - sr[i]));
  }
  EXPECT_LT(err_fine, err_coarse);
  EXPECT_LT(err_fine, 1e-3);
}

TEST(MackeyGlass, StaysBoundedAndPositive) {
  const auto s = generate_mackey_glass(5000);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GT(s[i], 0.0);
    EXPECT_LT(s[i], 2.0);
  }
}

TEST(MackeyGlass, ChaoticRegimeOscillates) {
  // After transients the λ=17 series oscillates roughly in [0.2, 1.4] and is
  // not periodic with the driving period; check it keeps crossing its mean.
  const auto s = generate_mackey_glass(5000);
  const auto tail = s.slice(3500, 5000);
  const double mean = tail.mean();
  int crossings = 0;
  for (std::size_t i = 1; i < tail.size(); ++i) {
    if ((tail[i - 1] - mean) * (tail[i] - mean) < 0.0) ++crossings;
  }
  EXPECT_GT(crossings, 50);
  EXPECT_GT(tail.variance(), 0.01);
}

TEST(MackeyGlassExperiment, PaperArrangement) {
  const auto exp = ef::series::make_paper_mackey_glass();
  EXPECT_EQ(exp.train.size(), 1000u);
  EXPECT_EQ(exp.test.size(), 500u);
  // Train range normalised exactly to [0,1].
  EXPECT_NEAR(exp.train.min(), 0.0, 1e-12);
  EXPECT_NEAR(exp.train.max(), 1.0, 1e-12);
  // Test normalised with the *train* map: near [0,1] but not forced into it.
  EXPECT_GT(exp.test.min(), -0.5);
  EXPECT_LT(exp.test.max(), 1.5);
}

TEST(MackeyGlassExperiment, NormalizerInvertsToRawSeries) {
  const auto exp = ef::series::make_paper_mackey_glass();
  const auto full = generate_mackey_glass(5000);
  const auto raw_train = full.slice(3500, 4500);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(exp.normalizer.inverse(exp.train[i]), raw_train[i], 1e-9);
  }
}

}  // namespace
