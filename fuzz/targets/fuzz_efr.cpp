// libFuzzer target: core::RuleSystem::load on hostile .efr bytes.
#include "harness/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  return ef::fuzz::efr_load(data, size);
}
