#include "obs/trace.hpp"

#include "obs/metrics.hpp"

#ifndef EVOFORECAST_OBS_ENABLED
#define EVOFORECAST_OBS_ENABLED 1
#endif

namespace ef::obs {
namespace {

/// Innermost live span on this thread (nullptr at top level). Unreferenced
/// when the instrumentation is compiled out (EVOFORECAST_OBS=OFF).
[[maybe_unused]] thread_local ScopedTimer* t_current_span = nullptr;

}  // namespace

TraceRegistry& TraceRegistry::global() {
  static TraceRegistry registry;
  return registry;
}

void TraceRegistry::record(std::string_view name, double total_ns, double self_ns) {
  const std::lock_guard lock(mutex_);
  auto it = spans_.find(name);
  if (it == spans_.end()) it = spans_.emplace(std::string(name), SpanStats{}).first;
  SpanStats& s = it->second;
  ++s.calls;
  s.total_ns += total_ns;
  s.self_ns += self_ns;
  s.duration_ns.add(total_ns);
}

TraceSnapshot TraceRegistry::snapshot() const {
  const std::lock_guard lock(mutex_);
  TraceSnapshot out;
  out.spans.reserve(spans_.size());
  for (const auto& [name, stats] : spans_) out.spans.push_back({name, stats});
  return out;
}

void TraceRegistry::reset() {
  const std::lock_guard lock(mutex_);
  spans_.clear();
}

ScopedTimer::ScopedTimer(const char* name) noexcept
    : name_(name), start_(std::chrono::steady_clock::now()) {
#if EVOFORECAST_OBS_ENABLED
  parent_ = t_current_span;
  t_current_span = this;
#endif
}

ScopedTimer::~ScopedTimer() {
#if EVOFORECAST_OBS_ENABLED
  const double total_ns =
      std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start_)
          .count();
  t_current_span = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += total_ns;
  TraceRegistry::global().record(name_, total_ns, total_ns - child_ns_);
#endif
}

void reset_all() {
  Registry::global().reset_values();
  TraceRegistry::global().reset();
}

}  // namespace ef::obs
