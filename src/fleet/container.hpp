// fleet/container.hpp — the `.efr` v2 multi-model container.
//
// One efserve instance at fleet scale hosts one rule system per series
// across thousands-to-millions of series. Per-series v1 `.efr` text files
// make that shape pathological: one open()+parse per model at boot, one
// stat() per model per poll tick, and a filesystem directory as the index.
// The v2 container packs an entire fleet into a single mmap-able binary
// file:
//
//   [FileHeader]            fixed 64 bytes, magic "EFRPACK2"
//   [IndexEntry × n_models] sorted by series id (strict, duplicate-free) —
//                           binary-searchable directly in the mapped bytes
//   [id arena]              concatenated UTF-8 series ids (no terminators;
//                           lengths live in the index)
//   [model arena]           per-model rule records, 8-byte aligned
//
// Every multi-byte field is little-endian (the only byte order this code
// base targets; the reader refuses a byte-swapped magic loudly rather than
// translating). Offsets are absolute file offsets; every one is validated
// against the actual file size before use, counts are capped before any
// allocation sized by them, and every floating-point payload value must be
// finite — the same hardening contract as the v1 text loader.
//
// The reader is zero-copy in the structural sense: opening a container
// mmaps the file and validates the header + index only (cold load is O(n)
// over 32-byte index entries, independent of rule payload volume, and
// touches no model bytes). Looking up a series binary-searches the mapped
// index; materialising a RuleSystem copies exactly that model's records out
// of the arena and nothing else. A million-model container costs one fd,
// one mmap, and page-cache residency proportional to the models actually
// served.
//
// Model payload, per rule (all offsets 8-byte aligned):
//   u64 window, u64 n_coeffs, u64 matches, u64 flags (bit0 = degenerate fit)
//   f64 fitness, f64 max_abs_residual, f64 mean_prediction
//   f64 lo, f64 hi           × window   (gene; NaN,NaN encodes the wildcard)
//   f64 coeff                × n_coeffs
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/rule_system.hpp"

namespace ef::fleet {

/// Format constants shared by writer, reader and the fuzz harness.
inline constexpr char kContainerMagic[8] = {'E', 'F', 'R', 'P', 'A', 'C', 'K', '2'};
inline constexpr std::uint32_t kContainerVersion = 2;
/// Caps mirror RuleSystem::load hardening, scaled to fleet shape.
inline constexpr std::uint64_t kMaxModels = 16'000'000;
inline constexpr std::uint64_t kMaxRulesPerModel = 1'000'000;
inline constexpr std::uint64_t kMaxWindow = 4096;
inline constexpr std::uint64_t kMaxCoeffs = kMaxWindow + 1;
inline constexpr std::uint64_t kMaxIdBytes = 4096;

/// Builds a v2 container in memory and publishes it atomically
/// (write temp + rename), so a reader polling the path never maps a torn
/// file. Ids must be unique and non-empty; add order is irrelevant — the
/// writer sorts the index. Every rule must carry a predicting part
/// (unevaluated rules cannot forecast and are rejected, as in v1 save).
class FleetWriter {
 public:
  /// Queue one model. Throws std::invalid_argument on an empty/oversized or
  /// duplicate id, an unevaluated rule, or a non-finite payload value.
  void add(std::string series_id, const core::RuleSystem& system);

  [[nodiscard]] std::size_t size() const noexcept { return models_.size(); }

  /// Serialise the container to bytes (the exact file image).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// encode() then write to `path` atomically via a sibling temp file +
  /// rename. Throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  struct PendingModel {
    std::string id;
    std::vector<std::uint8_t> payload;  ///< encoded rule records
    std::uint32_t rule_count = 0;
  };
  std::vector<PendingModel> models_;
};

/// Read-only view of one container file. The whole object is immutable
/// after open() and safe to share across threads without locking; the
/// mapping lives for the lifetime of the reader (materialised RuleSystems
/// are deep copies and outlive it freely).
class FleetReader {
 public:
  FleetReader() = default;
  ~FleetReader();

  FleetReader(FleetReader&& other) noexcept;
  FleetReader& operator=(FleetReader&& other) noexcept;
  FleetReader(const FleetReader&) = delete;
  FleetReader& operator=(const FleetReader&) = delete;

  /// Map and validate a container file (header, index bounds, sort order).
  /// Throws std::runtime_error on any structural violation — a container
  /// that opens is structurally safe to query.
  [[nodiscard]] static FleetReader open(const std::string& path);

  /// Validate a container from bytes already in memory (tests, fuzzing).
  /// The reader copies the bytes.
  [[nodiscard]] static FleetReader from_bytes(std::vector<std::uint8_t> bytes);

  [[nodiscard]] std::size_t size() const noexcept { return n_models_; }
  [[nodiscard]] bool empty() const noexcept { return n_models_ == 0; }
  /// Total container bytes (the mapped file size).
  [[nodiscard]] std::size_t bytes() const noexcept { return size_; }

  /// Series id of index slot `i` (sorted ascending), view into the mapping.
  [[nodiscard]] std::string_view id_at(std::size_t i) const;
  /// Rule count of index slot `i` without touching the model arena.
  [[nodiscard]] std::size_t rule_count_at(std::size_t i) const;

  /// Binary-search the sorted index; nullopt when the id is absent.
  [[nodiscard]] std::optional<std::size_t> find(std::string_view series_id) const;

  [[nodiscard]] bool contains(std::string_view series_id) const {
    return find(series_id).has_value();
  }

  /// Deep-copy index slot `i` into a serving-ready RuleSystem. Payload
  /// bounds, caps and finiteness are enforced here (the open() pass
  /// deliberately never reads model bytes). Throws std::runtime_error on a
  /// corrupt payload.
  [[nodiscard]] core::RuleSystem materialize_at(std::size_t i) const;

  /// find() + materialize_at(); nullopt when the id is absent.
  [[nodiscard]] std::optional<core::RuleSystem> materialize(std::string_view series_id) const;

  /// All ids in index order (allocates; intended for tools, not the serving
  /// hot path).
  [[nodiscard]] std::vector<std::string> ids() const;

 private:
  void validate();  ///< header + index pass; throws std::runtime_error
  void reset() noexcept;

  [[nodiscard]] const std::uint8_t* index_entry(std::size_t i) const noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t n_models_ = 0;
  std::vector<std::uint8_t> owned_;  ///< from_bytes storage (empty when mapped)
  void* map_base_ = nullptr;         ///< mmap base (nullptr when owned_)
  std::size_t map_size_ = 0;
};

}  // namespace ef::fleet
