#!/usr/bin/env python3
"""Validate a BENCH_fleet.json produced by `eftrain --bench-json` (used by CI).

Usage: check_fleet_bench.py BENCH_JSON [--min-series N]

Unlike check_match_bench.py this is not a baseline comparison: fleet bench
numbers scale with the requested fleet size, so the gate is structural —
every section the fleet pipeline promises must be present with sane values.
CI runs it twice: against the ~50-series smoke fleet it just trained
(--min-series 50) and against the committed BENCH_fleet.json baseline
(--min-series 1000, the acceptance floor for the packed-fleet numbers).

Checks:
  1. build / config / train / container sections present (corpus optional,
     required only when the producing run passed --evaluate).
  2. train: trained >= min-series, models_per_sec > 0, skipped reported.
  3. container: models == trained, bytes/model in a sane band (the v2
     payload is ~100 B/rule; < 64 B means the pack is empty shells, > 16 MiB
     means runaway rules), cold_load_us and lookup p50/p99 present and sane
     (cold load is an mmap + index validation — anything over a second means
     eager materialisation snuck back in).
  4. corpus (when present): pooled errors finite, coverage in [0, 100],
     evaluated + skipped == trained.
Exits non-zero if any check fails, after printing all of them.
"""
import json
import math
import sys

MIN_BYTES_PER_MODEL = 64.0
MAX_BYTES_PER_MODEL = 16.0 * 1024 * 1024
MAX_COLD_LOAD_US = 1_000_000.0
MAX_LOOKUP_P99_NS = 100_000_000.0

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    suffix = f": {detail}" if detail and not ok else ""
    print(f"  [{status}] {name}{suffix}")
    if not ok:
        FAILURES.append(name)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    min_series = 1
    for i, a in enumerate(sys.argv[1:], 1):
        if a == "--min-series":
            if i + 1 >= len(sys.argv):
                print("check_fleet_bench: --min-series needs a value")
                return 2
            min_series = int(sys.argv[i + 1])
            args = [x for x in args if x != sys.argv[i + 1]]
    if len(args) != 1:
        print(__doc__)
        return 2

    path = args[0]
    try:
        with open(path) as f:
            bench = json.load(f)
    except OSError as err:
        print(f"check_fleet_bench: cannot read {path}: {err}")
        return 2
    except json.JSONDecodeError as err:
        print(f"check_fleet_bench: {path} is not valid JSON "
              f"(line {err.lineno}, col {err.colno}): {err.msg}")
        return 2
    if not isinstance(bench, dict):
        print("check_fleet_bench: expected a JSON object at the top level")
        return 2

    print(f"check_fleet_bench: {path} (min series {min_series})")

    for section in ("build", "config", "train", "container"):
        check(f"section '{section}' present", isinstance(bench.get(section), dict))
    if FAILURES:
        print("check_fleet_bench: missing sections, stopping")
        return 1

    train = bench["train"]
    trained = train.get("trained", 0)
    check(f"trained {trained} >= {min_series}", trained >= min_series)
    check("skipped count reported", isinstance(train.get("skipped"), int))
    check(f"models_per_sec {train.get('models_per_sec', 0):.1f} > 0",
          train.get("models_per_sec", 0) > 0)
    check("total rules > 0", train.get("rules", 0) > 0)

    container = bench["container"]
    check(f"container models {container.get('models')} == trained {trained}",
          container.get("models") == trained)
    bpm = container.get("bytes_per_model", 0.0)
    check(f"bytes/model {bpm:.1f} in [{MIN_BYTES_PER_MODEL:.0f}, "
          f"{MAX_BYTES_PER_MODEL:.0f}]",
          MIN_BYTES_PER_MODEL <= bpm <= MAX_BYTES_PER_MODEL)
    cold = container.get("cold_load_us", -1.0)
    check(f"cold_load_us {cold:.2f} in (0, {MAX_COLD_LOAD_US:.0f}]",
          0 < cold <= MAX_COLD_LOAD_US,
          "cold open must stay an mmap + header/index walk")
    for key in ("lookup_p50_ns", "lookup_p99_ns"):
        v = container.get(key, -1.0)
        check(f"{key} {v:.0f} in (0, {MAX_LOOKUP_P99_NS:.0f}]",
              0 < v <= MAX_LOOKUP_P99_NS)
    check("lookup p50 <= p99",
          container.get("lookup_p50_ns", 0) <= container.get("lookup_p99_ns", 0))
    check("materialize_p99_us > 0", container.get("materialize_p99_us", 0) > 0)

    corpus = bench.get("corpus")
    if isinstance(corpus, dict):
        for key in ("pooled_rmse", "pooled_mae"):
            v = corpus.get(key, math.nan)
            check(f"corpus {key} finite", isinstance(v, (int, float))
                  and math.isfinite(v))
        pop = corpus.get("percentage_of_prediction", -1.0)
        check(f"percentage_of_prediction {pop:.1f} in [0, 100]", 0 <= pop <= 100)
        accounted = corpus.get("evaluated", 0) + corpus.get("skipped", 0)
        check(f"corpus evaluated+skipped {accounted} == trained {trained}",
              accounted == trained)
        check("covered <= total points",
              corpus.get("covered_points", 0) <= corpus.get("total_points", 0))

    check("peak_rss_kb > 0", bench.get("peak_rss_kb", 0) > 0)

    if FAILURES:
        print(f"check_fleet_bench: {len(FAILURES)} check(s) failed")
        return 1
    print("check_fleet_bench: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
