// serve/tcp_server.hpp — blocking TCP wrapper around ForecastService.
//
// Deliberately boring transport: one listening socket, one thread per
// connection, newline-delimited JSON both ways (see serve/protocol.hpp).
// Boring is a feature — the protocol is testable with netcat, implementable
// from any language in ten lines, and free of framing ambiguity. The
// interesting machinery (hot-reload, batching, caching) lives below the
// transport in ForecastService, so an async or HTTP front-end can replace
// this file without touching the serving semantics.
//
// One carve-out: a first line starting with "GET " or "HEAD " flips the
// connection into single-shot HTTP mode, so Prometheus can scrape
// GET /metrics from the same port without a second listener. The response
// is HTTP/1.0 with Connection: close; anything but /metrics is a 404.
//
// Shutdown contract: stop() closes the listening socket, then each
// connection finishes the request it is currently processing (the batcher
// drains separately via ForecastService::shutdown) before its thread is
// joined. Connection read loops wake every ~200 ms to notice the stop flag,
// so stop() completes promptly even with idle keep-alive connections.
// POSIX-only (guarded); on other platforms construction throws.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace ef::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7777;  ///< 0 = pick an ephemeral port (tests)
  int backlog = 64;
  std::size_t max_line_bytes = 1 << 20;  ///< oversize request lines are rejected
};

class TcpServer {
 public:
  TcpServer(ForecastService& service, ServerConfig config = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind, listen and spawn the accept thread. Throws std::runtime_error on
  /// bind/listen failure (port taken, unsupported platform).
  void start();

  /// Graceful stop: close the listener, let in-flight requests finish, join
  /// every connection thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;
  /// Actual bound port (resolves port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  [[nodiscard]] std::uint64_t connections_served() const noexcept;

 private:
  /// One live connection: its thread plus a completion flag the accept loop
  /// uses to reap finished threads without blocking on join.
  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void connection_loop(int client_fd, std::shared_ptr<std::atomic<bool>> done);
  void reap_finished_locked();
  [[nodiscard]] std::string handle_line(const std::string& line);
  /// Full HTTP/1.0 response (headers + body) for a GET/HEAD hitting the
  /// JSON-lines port — the Prometheus scrape path. Connection: close.
  [[nodiscard]] std::string handle_http(std::string_view method, std::string_view path);

  ForecastService& service_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::thread acceptor_;
  std::mutex threads_mutex_;
  std::vector<Connection> connection_threads_;
};

}  // namespace ef::serve
