// Tests for obs/metrics.hpp + obs/export.hpp: registry semantics, concurrent
// counter increments through the instrumented thread pool, histogram quantile
// sanity against exact order statistics, and JSON/CSV export round-trips.
//
// The registries are process-wide, so every test either resets them first or
// uses metric names unique to that test.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/macros.hpp"
#include "util/thread_pool.hpp"

namespace {

using ef::obs::Histogram;
using ef::obs::Registry;

TEST(ObsCounter, AddValueReset) {
  auto& c = Registry::global().counter("obs.test.counter_basic");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, FindOrCreateReturnsSameInstrument) {
  auto& a = Registry::global().counter("obs.test.same_instance");
  auto& b = Registry::global().counter("obs.test.same_instance");
  EXPECT_EQ(&a, &b);
  auto& g1 = Registry::global().gauge("obs.test.same_gauge");
  auto& g2 = Registry::global().gauge("obs.test.same_gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(ObsRegistry, CrossKindNameCollisionThrows) {
  (void)Registry::global().counter("obs.test.collision");
  EXPECT_THROW((void)Registry::global().gauge("obs.test.collision"),
               std::invalid_argument);
  EXPECT_THROW((void)Registry::global().histogram("obs.test.collision"),
               std::invalid_argument);
}

TEST(ObsRegistry, ResetValuesKeepsCachedReferencesValid) {
  auto& c = Registry::global().counter("obs.test.reset_keep");
  c.add(7);
  Registry::global().reset_values();
  EXPECT_EQ(c.value(), 0u);  // same object, zeroed
  c.add(3);
  EXPECT_EQ(Registry::global().counter("obs.test.reset_keep").value(), 3u);
}

TEST(ObsGauge, SetAndAdd) {
  auto& g = Registry::global().gauge("obs.test.gauge");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

// The acceptance-critical path: many pool workers hammering one counter via
// the macro fast path must lose no increments.
TEST(ObsCounter, ConcurrentIncrementsThroughParallelForAreExact) {
  auto& c = Registry::global().counter("obs.test.concurrent");
  c.reset();
  ef::util::ThreadPool pool(4);
  constexpr std::size_t kN = 200000;
  pool.parallel_for(
      0, kN,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) c.add(1);
      },
      64);  // small grain → genuinely pooled chunks
  EXPECT_EQ(c.value(), kN);
}

TEST(ObsCounter, MacroPathCountsOnlyWhenEnabled) {
  Registry::global().counter("obs.test.macro_counter").reset();
  ef::util::ThreadPool pool(4);
  constexpr std::size_t kN = 50000;
  pool.parallel_for(
      0, kN,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          EVOFORECAST_COUNT("obs.test.macro_counter", 1);
        }
      },
      64);
#if EVOFORECAST_OBS_ENABLED
  EXPECT_EQ(Registry::global().counter("obs.test.macro_counter").value(), kN);
#else
  EXPECT_EQ(Registry::global().counter("obs.test.macro_counter").value(), 0u);
#endif
}

TEST(ObsHistogram, QuantilesTrackExactOrderStatistics) {
  // Unit-width buckets make the interpolation error at most one bucket.
  std::vector<double> bounds;
  for (double b = 1.0; b <= 128.0; b += 1.0) bounds.push_back(b);
  auto& h = Registry::global().histogram("obs.test.hist_quantiles", bounds);
  h.reset();

  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  for (const double v : values) h.observe(v);

  const auto stats = h.stats();
  ASSERT_EQ(stats.count, values.size());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const auto exact = [&](double q) {
    return sorted[static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1))];
  };
  EXPECT_NEAR(stats.p50, exact(0.50), 1.5);
  EXPECT_NEAR(stats.p90, exact(0.90), 1.5);
  EXPECT_NEAR(stats.p99, exact(0.99), 1.5);

  // Moments are exact (Welford), not bucket estimates.
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  EXPECT_DOUBLE_EQ(stats.mean, 50.5);
  double var = 0.0;
  for (const double v : values) var += (v - 50.5) * (v - 50.5);
  EXPECT_NEAR(stats.stddev, std::sqrt(var / 100.0), 1e-9);
}

TEST(ObsHistogram, SingleObservationClampsQuantilesToExactValue) {
  auto& h = Registry::global().histogram("obs.test.hist_single");
  h.reset();
  h.observe(5.0);
  const auto stats = h.stats();
  EXPECT_EQ(stats.count, 1u);
  // Bucket interpolation would land somewhere in (4, 8]; clamping to the
  // exact [min, max] envelope pins it.
  EXPECT_DOUBLE_EQ(stats.p50, 5.0);
  EXPECT_DOUBLE_EQ(stats.p99, 5.0);
}

TEST(ObsHistogram, ConcurrentObservesLoseNothing) {
  auto& h = Registry::global().histogram("obs.test.hist_concurrent");
  h.reset();
  ef::util::ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  pool.parallel_for(
      0, kN,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          h.observe(static_cast<double>(i % 64));
        }
      },
      64);
  const auto stats = h.stats();
  EXPECT_EQ(stats.count, kN);
  std::uint64_t bucket_total = 0;
  for (const auto b : stats.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kN);
}

TEST(ObsSnapshot, SortedByName) {
  (void)Registry::global().counter("obs.test.zzz");
  (void)Registry::global().counter("obs.test.aaa");
  const auto snap = Registry::global().snapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
}

// ---------------------------------------------------------------------------
// Export round-trip. A tiny recursive-descent JSON walker is enough to prove
// the emitted text is syntactically valid; targeted substring checks prove
// the values survived.

class JsonWalker {
 public:
  explicit JsonWalker(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  [[nodiscard]] bool valid() {
    value();
    ws();
    return !fail_ && p_ == end_;
  }

 private:
  void ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\n' || *p_ == '\t' || *p_ == '\r')) ++p_;
  }
  bool lit(const char* s) {
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end_ - p_) >= n && std::strncmp(p_, s, n) == 0) {
      p_ += n;
      return true;
    }
    return false;
  }
  void string() {
    ++p_;  // opening quote
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') ++p_;
      ++p_;
    }
    if (p_ >= end_) {
      fail_ = true;
      return;
    }
    ++p_;  // closing quote
  }
  void number() {
    const char* start = p_;
    while (p_ < end_ && (std::strchr("+-.eE", *p_) != nullptr || (*p_ >= '0' && *p_ <= '9'))) {
      ++p_;
    }
    if (p_ == start) fail_ = true;
  }
  void array() {
    ++p_;  // '['
    ws();
    if (p_ < end_ && *p_ == ']') {
      ++p_;
      return;
    }
    while (!fail_) {
      value();
      ws();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ < end_ && *p_ == ']') {
        ++p_;
        return;
      }
      fail_ = true;
    }
  }
  void object() {
    ++p_;  // '{'
    ws();
    if (p_ < end_ && *p_ == '}') {
      ++p_;
      return;
    }
    while (!fail_) {
      ws();
      if (p_ >= end_ || *p_ != '"') {
        fail_ = true;
        return;
      }
      string();
      ws();
      if (p_ >= end_ || *p_ != ':') {
        fail_ = true;
        return;
      }
      ++p_;
      value();
      ws();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ < end_ && *p_ == '}') {
        ++p_;
        return;
      }
      fail_ = true;
    }
  }
  void value() {
    ws();
    if (p_ >= end_) {
      fail_ = true;
      return;
    }
    if (*p_ == '{') {
      object();
    } else if (*p_ == '[') {
      array();
    } else if (*p_ == '"') {
      string();
    } else if (!lit("true") && !lit("false") && !lit("null")) {
      number();
    }
  }

  const char* p_;
  const char* end_;
  bool fail_ = false;
};

TEST(ObsExport, JsonIsValidAndCarriesValues) {
  ef::obs::reset_all();
  Registry::global().counter("obs.test.json_counter").add(42);
  Registry::global().gauge("obs.test.json_gauge").set(1.5);
  Registry::global().histogram("obs.test.json_hist").observe(3.0);

  const auto report = ef::obs::capture_run_report();
  const std::string json = ef::obs::to_json(report);

  JsonWalker walker(json);
  EXPECT_TRUE(walker.valid()) << json;
  EXPECT_NE(json.find("\"obs.test.json_counter\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("obs.test.json_gauge"), std::string::npos);
  EXPECT_NE(json.find("obs.test.json_hist"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
}

TEST(ObsExport, CsvHasHeaderAndRows) {
  ef::obs::reset_all();
  Registry::global().counter("obs.test.csv_counter").add(9);
  const auto report = ef::obs::capture_run_report();
  const std::string csv = ef::obs::to_csv(report);
  EXPECT_EQ(csv.rfind("kind,name,field,value", 0), 0u);
  EXPECT_NE(csv.find("counter,obs.test.csv_counter,value,9"), std::string::npos) << csv;
}

TEST(ObsExport, FormatReportMentionsInstruments) {
  ef::obs::reset_all();
  Registry::global().counter("obs.test.report_counter").add(5);
  const auto report = ef::obs::capture_run_report();
  const std::string text = ef::obs::format_report(report);
  EXPECT_NE(text.find("obs.test.report_counter"), std::string::npos);
  EXPECT_NE(text.find("counters"), std::string::npos);
}

}  // namespace
