#include "core/generational.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/crossover.hpp"
#include "core/init.hpp"
#include "core/mutation.hpp"
#include "core/selection.hpp"
#include "obs/macros.hpp"
#include "obs/timeline.hpp"

namespace ef::core {

void GenerationalConfig::validate() const {
  base.validate();
  if (elite_count >= base.population_size) {
    throw std::invalid_argument("GenerationalConfig: elite_count must be < population_size");
  }
}

GenerationalEngine::GenerationalEngine(const WindowDataset& data, GenerationalConfig config,
                                       util::ThreadPool* pool, TelemetrySink telemetry)
    : data_(data),
      config_(config),
      engine_(data, pool, resolve_match_backend(config.base.match_backend)),
      evaluator_(engine_, config_.base),
      rng_(config.base.seed),
      telemetry_(std::move(telemetry)) {
  config_.validate();
  population_ = initialize_population(data_, config_.base, rng_);
  evaluator_.evaluate_population(population_, nullptr, config_.base.batched_fitness);
  emit_telemetry();  // generation-0 snapshot
}

void GenerationalEngine::emit_telemetry() {
#if !EVOFORECAST_OBS_ENABLED
  if (!telemetry_) return;  // nothing to feed: no sink, events compiled out
#endif
  TelemetryRecord rec = snapshot();
  rec.registry = &obs::Registry::global();
  EVOFORECAST_EVENT("train.generation", {"engine", "generational"},
                    {"generation", rec.generation}, {"best_fitness", rec.best_fitness},
                    {"mean_fitness", rec.mean_fitness}, {"mean_error", rec.mean_error},
                    {"mean_matches", rec.mean_matches},
                    {"replacements", rec.replacements});
  if (telemetry_) telemetry_(rec);
}

std::size_t GenerationalEngine::step() {
  EVOFORECAST_TRACE("core.generational.step");
  const obs::SpanScope generation_span("train.generation");
  ++generation_;

  // Elites: indices of the top-k by fitness, copied unchanged.
  std::vector<std::size_t> order(population_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(config_.elite_count),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return population_[a].fitness() > population_[b].fitness();
                    });

  std::vector<Rule> next;
  next.reserve(population_.size());
  for (std::size_t e = 0; e < config_.elite_count; ++e) {
    next.push_back(population_[order[e]]);
  }

  // Generate the whole offspring cohort first (same RNG call order as the
  // old generate-evaluate interleave: selection, crossover and mutation draw
  // nothing during evaluation), then evaluate it as one batch — under the
  // rule-major backend that is a single plane build + window pass per
  // generation instead of one sweep per offspring.
  const std::size_t offspring_count = population_.size() - next.size();
  std::vector<Rule> offspring;
  offspring.reserve(offspring_count);
  for (std::size_t k = 0; k < offspring_count; ++k) {
    const ParentPair parents =
        select_parents(population_, config_.base.tournament_rounds, rng_);
    EVOFORECAST_COUNT("evolution.tournament_rounds", config_.base.tournament_rounds);
    Rule child =
        uniform_crossover(population_[parents.first], population_[parents.second], rng_);
    mutate_rule(child, data_, config_.base, rng_);
    EVOFORECAST_COUNT("evolution.offspring_generated", 1);
    offspring.push_back(std::move(child));
  }
  evaluator_.evaluate_population(offspring, nullptr, config_.base.batched_fitness);
  evaluations_ += offspring_count;

  std::size_t improved = 0;
  for (std::size_t k = 0; k < offspring_count; ++k) {
    // Same comparison the interleaved loop made: offspring k lands at slot
    // elite_count + k and is scored against the rule previously there.
    if (offspring[k].fitness() > population_[config_.elite_count + k].fitness()) {
      ++improved;
      EVOFORECAST_COUNT("evolution.offspring_accepted", 1);
    }
    next.push_back(std::move(offspring[k]));
  }
  population_ = std::move(next);

  if (config_.base.telemetry_stride != 0 &&
      generation_ % config_.base.telemetry_stride == 0) {
    emit_telemetry();
  }
  return improved;
}

void GenerationalEngine::run_evaluations(std::size_t budget) {
  while (evaluations_ < budget) step();
}

TelemetryRecord GenerationalEngine::snapshot() const {
  TelemetryRecord rec;
  rec.generation = generation_;
  if (population_.empty()) return rec;
  double best = population_.front().fitness();
  double sum = 0.0;
  double err = 0.0;
  double matches = 0.0;
  double spec = 0.0;
  for (const Rule& r : population_) {
    best = std::max(best, r.fitness());
    sum += r.fitness();
    if (r.predicting()) {
      err += r.predicting()->error();
      matches += static_cast<double>(r.predicting()->matches);
    }
    spec += static_cast<double>(r.specificity());
  }
  const auto n = static_cast<double>(population_.size());
  rec.best_fitness = best;
  rec.mean_fitness = sum / n;
  rec.mean_error = err / n;
  rec.mean_matches = matches / n;
  rec.mean_specificity = spec / n;
  return rec;
}

}  // namespace ef::core
