// End-to-end determinism: the whole pipeline — generator → dataset →
// multi-execution training → forecasting → serialisation — must be
// bit-reproducible from the seeds, including across thread-pool sizes.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "series/sunspot.hpp"
#include "series/venice.hpp"
#include "util/thread_pool.hpp"

namespace {

using ef::core::RuleSystemConfig;
using ef::core::WindowDataset;

RuleSystemConfig small_config() {
  RuleSystemConfig cfg;
  cfg.evolution.population_size = 20;
  cfg.evolution.generations = 400;
  cfg.evolution.emax = 0.15;
  cfg.evolution.seed = 71;
  cfg.max_executions = 2;
  cfg.coverage_target_percent = 100.0;
  return cfg;
}

TEST(Determinism, GeneratorsAreSeedStable) {
  // Two independent constructions of each experiment must agree exactly.
  const auto mg1 = ef::series::make_paper_mackey_glass();
  const auto mg2 = ef::series::make_paper_mackey_glass();
  for (std::size_t i = 0; i < mg1.train.size(); i += 17) {
    ASSERT_DOUBLE_EQ(mg1.train[i], mg2.train[i]);
  }
  const auto v1 = ef::series::make_paper_venice(2000, 500);
  const auto v2 = ef::series::make_paper_venice(2000, 500);
  for (std::size_t i = 0; i < v1.validation.size(); i += 13) {
    ASSERT_DOUBLE_EQ(v1.validation[i], v2.validation[i]);
  }
  const auto s1 = ef::series::make_paper_sunspots();
  const auto s2 = ef::series::make_paper_sunspots();
  for (std::size_t i = 0; i < s1.train.size(); i += 41) {
    ASSERT_DOUBLE_EQ(s1.train[i], s2.train[i]);
  }
}

TEST(Determinism, FullPipelineSerialisationIsByteStable) {
  const auto mg = ef::series::make_paper_mackey_glass();
  const WindowDataset train(mg.train, 4, 1);

  std::string first;
  std::string second;
  for (std::string* out : {&first, &second}) {
    const auto result = ef::core::train(train, {.config = small_config()});
    std::ostringstream buffer;
    result.system.save(buffer);
    *out = buffer.str();
  }
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Determinism, IndependentOfThreadPoolSize) {
  // The parallel match engine must not change results with worker count.
  const auto mg = ef::series::make_paper_mackey_glass();
  const WindowDataset train(mg.train, 4, 1);
  const WindowDataset test(mg.test, 4, 1);

  ef::util::ThreadPool one(1);
  ef::util::ThreadPool four(4);

  const auto a = ef::core::train(train, {.config = small_config(), .pool = &one});
  const auto b = ef::core::train(train, {.config = small_config(), .pool = &four});

  ASSERT_EQ(a.system.size(), b.system.size());
  const auto fa = a.system.forecast_dataset(test, &one);
  const auto fb = b.system.forecast_dataset(test, &four);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i].has_value(), fb[i].has_value()) << i;
    if (fa[i]) {
      ASSERT_DOUBLE_EQ(*fa[i], *fb[i]) << i;
    }
  }
}

TEST(Determinism, IndependentOfMatchBackend) {
  // The backend is a speed knob only: every kernel produces bit-identical
  // match sets, so the trained system must serialise to identical bytes
  // whichever backend the config picks — including the cpuid-dispatched
  // AVX2 one and the rule-major batched fitness path.
  const auto mg = ef::series::make_paper_mackey_glass();
  const WindowDataset train(mg.train, 4, 1);

  std::vector<std::string> serialised;
  for (const ef::core::MatchBackend backend :
       {ef::core::MatchBackend::kScalar, ef::core::MatchBackend::kSoa,
        ef::core::MatchBackend::kSoaPrefilter, ef::core::MatchBackend::kAvx2,
        ef::core::MatchBackend::kRuleMajor, ef::core::MatchBackend::kAuto}) {
    auto cfg = small_config();
    cfg.evolution.match_backend = backend;
    const auto result = ef::core::train(train, {.config = cfg});
    std::ostringstream buffer;
    result.system.save(buffer);
    serialised.push_back(buffer.str());
  }
  ASSERT_EQ(serialised.size(), 6u);
  EXPECT_FALSE(serialised[0].empty());
  for (std::size_t i = 1; i < serialised.size(); ++i) {
    EXPECT_EQ(serialised[0], serialised[i]) << "backend index " << i;
  }
}

TEST(Determinism, IslandTrainingBatchedPathMatchesScalar) {
  // Island-parallel training under the rule-major batched fitness path must
  // be bit-identical to the same schedule evaluated with the scalar
  // reference kernel at a fixed seed.
  const auto mg = ef::series::make_paper_mackey_glass();
  const WindowDataset train(mg.train, 4, 1);
  ef::util::ThreadPool pool(4);

  std::vector<std::string> serialised;
  for (const ef::core::MatchBackend backend :
       {ef::core::MatchBackend::kScalar, ef::core::MatchBackend::kRuleMajor}) {
    auto cfg = small_config();
    cfg.evolution.match_backend = backend;
    const auto result =
        ef::core::train(train, {.config = cfg,
                                .pool = &pool,
                                .parallelism = ef::core::TrainParallelism::kIslands});
    std::ostringstream buffer;
    result.system.save(buffer);
    serialised.push_back(buffer.str());
  }
  ASSERT_EQ(serialised.size(), 2u);
  EXPECT_FALSE(serialised[0].empty());
  EXPECT_EQ(serialised[0], serialised[1]);
}

TEST(Determinism, SeedChangesResults) {
  // Sanity check that the determinism above isn't vacuous: a different seed
  // must actually produce a different system.
  const auto mg = ef::series::make_paper_mackey_glass();
  const WindowDataset train(mg.train, 4, 1);

  auto cfg_a = small_config();
  auto cfg_b = small_config();
  cfg_b.evolution.seed = 72;
  const auto a = ef::core::train(train, {.config = cfg_a});
  const auto b = ef::core::train(train, {.config = cfg_b});

  std::ostringstream sa;
  std::ostringstream sb;
  a.system.save(sa);
  b.system.save(sb);
  EXPECT_NE(sa.str(), sb.str());
}

}  // namespace
