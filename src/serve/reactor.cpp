#include "serve/reactor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/events.hpp"
#include "obs/exposition.hpp"
#include "obs/macros.hpp"
#include "obs/timeline.hpp"
#include "obs/timeline_export.hpp"

#if defined(__linux__)
#define EVOFORECAST_HAVE_EPOLL 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>
#else
#define EVOFORECAST_HAVE_EPOLL 0
#endif

namespace ef::serve {

namespace {

#if EVOFORECAST_HAVE_EPOLL
/// epoll_event.data.ptr sentinels for the two non-connection fds a shard
/// watches. Real Connection pointers are always aligned, so low small
/// integers can never collide.
void* const kListenTag = reinterpret_cast<void*>(0x1);
void* const kWakeTag = reinterpret_cast<void*>(0x2);

/// Clears Connection::processing on every exit from process_lines.
struct ProcessingGuard {
  bool& flag;
  ~ProcessingGuard() { flag = false; }
};
#endif

/// %.17g double for hand-built JSON; non-finite values become null (JSON
/// has no NaN/Inf literals).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

/// One reactor shard: an epoll loop plus everything it owns. Only the inbox
/// (accept handoffs, cross-thread completions) is shared — under `mutex`.
struct Reactor::Shard {
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string line;
  };

  std::size_t index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::atomic<std::thread::id> thread_id{};
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns;
  /// Connections closed mid-batch park here (see Connection::dead); freed
  /// once the current epoll batch is fully dispatched.
  std::vector<std::unique_ptr<Connection>> graveyard;
  bool drain_entered = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  /// Listener parked after EMFILE/ENFILE (shard 0 only): with level-triggered
  /// epoll the listen fd would stay readable and spin the loop at 100% CPU,
  /// so it leaves the epoll set until `listener_resume`.
  bool listener_paused = false;
  std::chrono::steady_clock::time_point listener_resume{};

  // Cross-thread inbox. `closed` flips (under the mutex) when the loop has
  // exited and the fds are about to close — late completions check it and
  // drop instead of writing to a recycled fd.
  std::mutex mutex;
  bool closed = false;
  std::vector<int> pending_fds;
  std::vector<Completion> inbox;

  // Per-reactor counters (serve.reactor.<i>.*). Null when observability is
  // compiled out — bump() is then a no-op and nothing registers.
  obs::Counter* accepted = nullptr;
  obs::Counter* requests = nullptr;
  obs::Counter* completions = nullptr;
  obs::Counter* wakeups = nullptr;
  obs::Counter* partial_writes = nullptr;
  void register_counters() {
#if EVOFORECAST_OBS_ENABLED
    const std::string prefix = "serve.reactor." + std::to_string(index) + ".";
    auto& reg = obs::Registry::global();
    accepted = &reg.counter(prefix + "accepted");
    requests = &reg.counter(prefix + "requests");
    completions = &reg.counter(prefix + "completions");
    wakeups = &reg.counter(prefix + "wakeups");
    partial_writes = &reg.counter(prefix + "partial_writes");
#endif
  }
  static void bump(obs::Counter* c, std::uint64_t d = 1) {
    if (c != nullptr) c->add(d);
  }
};

Reactor::Reactor(ForecastService& service)
    : service_(service), options_(service.options()) {}

Reactor::~Reactor() { stop(); }

bool Reactor::running() const noexcept {
  return running_.load(std::memory_order_acquire);
}

std::uint64_t Reactor::connections_served() const noexcept {
  return connections_.load(std::memory_order_relaxed);
}

#if EVOFORECAST_HAVE_EPOLL

void Reactor::start() {
  if (running()) return;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("Reactor: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("Reactor: bad host '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("Reactor: cannot bind " + options_.host + ":" +
                             std::to_string(options_.port));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("Reactor: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  std::size_t n = options_.reactor_threads;
  if (n == 0) {
    n = std::min<std::size_t>(std::max(1u, std::thread::hardware_concurrency()), 4);
  }

  shards_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_shared<Shard>();
    shard->index = i;
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    shard->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard->epoll_fd < 0 || shard->wake_fd < 0) {
      throw std::runtime_error("Reactor: epoll/eventfd setup failed");
    }
    epoll_event wake{};
    wake.events = EPOLLIN;
    wake.data.ptr = kWakeTag;
    ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->wake_fd, &wake);
    if (i == 0) {
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.ptr = kListenTag;
      ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev);
    }
    shard->register_counters();
    shards_.push_back(std::move(shard));
  }

  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->thread = std::thread([this, raw] { shard_loop(*raw); });
  }
}

void Reactor::stop() {
  const bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  draining_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    if (!shard->closed && shard->wake_fd >= 0) {
      std::uint64_t one = 1;
      [[maybe_unused]] const ssize_t w = ::write(shard->wake_fd, &one, sizeof(one));
    }
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
    const std::lock_guard lock(shard->mutex);
    shard->closed = true;
    if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
    if (shard->wake_fd >= 0) ::close(shard->wake_fd);
    shard->epoll_fd = -1;
    shard->wake_fd = -1;
    for (int fd : shard->pending_fds) ::close(fd);
    shard->pending_fds.clear();
    // A loop that exited through the epoll_wait error path never ran
    // close_connection on its survivors — their sockets are still open.
    for (auto& [id, conn] : shard->conns) {
      if (!conn->dead) ::close(conn->fd());
    }
    shard->conns.clear();
    shard->graveyard.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  (void)was_running;
}

void Reactor::enter_drain(Shard& shard) {
  shard.drain_entered = true;
  shard.drain_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(std::max(0, options_.drain_timeout_ms));
  if (shard.index == 0 && listen_fd_ >= 0) {
    ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
  }
  // Stop reading, answer what is already buffered, close whoever is idle.
  std::vector<Connection*> conns;
  conns.reserve(shard.conns.size());
  for (auto& [id, conn] : shard.conns) conns.push_back(conn.get());
  for (Connection* conn : conns) {
    conn->paused_read = true;
    conn->close_after_flush = true;
    update_interest(shard, conn);
    process_lines(shard, conn);
    flush(shard, conn);  // closes the connection once it is idle
  }
}

void Reactor::shard_loop(Shard& shard) {
  shard.thread_id.store(std::this_thread::get_id(), std::memory_order_release);
  epoll_event events[64];
  for (;;) {
    if (draining_.load(std::memory_order_acquire) && !shard.drain_entered) {
      enter_drain(shard);
    }
    if (shard.drain_entered && shard.conns.empty()) break;

    int timeout_ms = -1;
    if (shard.drain_entered) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= shard.drain_deadline) {
        // Drain budget blown: force-close the stragglers.
        std::vector<Connection*> conns;
        conns.reserve(shard.conns.size());
        for (auto& [id, conn] : shard.conns) conns.push_back(conn.get());
        for (Connection* conn : conns) close_connection(shard, conn);
        break;
      }
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(shard.drain_deadline - now)
              .count() +
          1);
    }
    if (shard.listener_paused) {
      if (shard.drain_entered) {
        shard.listener_paused = false;  // draining: stay out of the epoll set
      } else {
        const auto now = std::chrono::steady_clock::now();
        if (now >= shard.listener_resume) {
          epoll_event lev{};
          lev.events = EPOLLIN;
          lev.data.ptr = kListenTag;
          ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev);
          shard.listener_paused = false;
        } else {
          const int wait_ms = static_cast<int>(
              std::chrono::duration_cast<std::chrono::milliseconds>(shard.listener_resume -
                                                                    now)
                  .count() +
              1);
          timeout_ms = timeout_ms < 0 ? wait_ms : std::min(timeout_ms, wait_ms);
        }
      }
    }

    const int n = ::epoll_wait(shard.epoll_fd, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd broken — unrecoverable for this shard
    }
    Shard::bump(shard.wakeups);
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.ptr == kListenTag) {
        handle_accept(shard);
        continue;
      }
      if (ev.data.ptr == kWakeTag) {
        std::uint64_t drainv = 0;
        while (::read(shard.wake_fd, &drainv, sizeof(drainv)) > 0) {
        }
        drain_inbox(shard);
        continue;
      }
      Connection* conn = static_cast<Connection*>(ev.data.ptr);
      if (conn->dead) continue;  // closed earlier in this batch; freed below
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0 && (ev.events & EPOLLIN) == 0) {
        close_connection(shard, conn);
        continue;
      }
      if ((ev.events & EPOLLIN) != 0) {
        handle_readable(shard, conn);
        continue;  // handle_readable flushed (and may have closed) the conn
      }
      if ((ev.events & EPOLLOUT) != 0) flush(shard, conn);
    }
    // Batch fully dispatched: no stale epoll_event can still point at a
    // closed connection, so the graveyard is safe to free.
    shard.graveyard.clear();
  }
  // Loop exited: mark the shard closed so late cross-thread completions
  // drop instead of touching fds that are about to be recycled.
  const std::lock_guard lock(shard.mutex);
  shard.closed = true;
}

void Reactor::handle_accept(Shard& shard) {
  for (;;) {
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        // Out of fds/memory: the pending connection stays in the backlog, so
        // with level-triggered epoll this fd reports readable forever. Park
        // the listener and retry once resources may have freed up.
        ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
        shard.listener_paused = true;
        shard.listener_resume =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
        EVOFORECAST_COUNT("serve.accept_stalls", 1);
        EVOFORECAST_EVENT("serve.accept_stall", {"errno", errno});
        break;
      }
      break;  // EAGAIN (drained) or transient failure
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(client);
      continue;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    EVOFORECAST_COUNT("serve.connections", 1);
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(client, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    }
    const std::size_t target =
        rr_next_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    if (target == shard.index) {
      adopt(shard, client);
      continue;
    }
    Shard& other = *shards_[target];
    {
      const std::lock_guard lock(other.mutex);
      if (other.closed) {
        ::close(client);
        continue;
      }
      other.pending_fds.push_back(client);
      std::uint64_t wake = 1;
      [[maybe_unused]] const ssize_t w = ::write(other.wake_fd, &wake, sizeof(wake));
    }
  }
}

void Reactor::adopt(Shard& shard, int fd) {
  const std::uint64_t id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  auto conn = std::make_unique<Connection>(fd, id, shard.index);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = conn.get();
  if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  Shard::bump(shard.accepted);
  shard.conns.emplace(id, std::move(conn));
}

void Reactor::drain_inbox(Shard& shard) {
  std::vector<int> fds;
  std::vector<Shard::Completion> inbox;
  {
    const std::lock_guard lock(shard.mutex);
    fds.swap(shard.pending_fds);
    inbox.swap(shard.inbox);
  }
  for (const int fd : fds) {
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
    } else {
      adopt(shard, fd);
    }
  }
  for (Shard::Completion& c : inbox) {
    const auto it = shard.conns.find(c.conn_id);
    if (it == shard.conns.end()) continue;  // connection closed while in flight
    Shard::bump(shard.completions);
    Connection* conn = it->second.get();
    complete_local(shard, conn, c.seq, std::move(c.line));
    flush(shard, conn);
  }
}

void Reactor::handle_readable(Shard& shard, Connection* conn) {
  char chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(conn->fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->append(chunk, static_cast<std::size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(chunk))) break;  // socket drained
      continue;
    }
    if (n == 0) {
      // Peer finished sending. Answer everything received, then close once
      // the write queue drains (pipelined requests may still be in flight).
      conn->paused_read = true;
      conn->close_after_flush = true;
      update_interest(shard, conn);
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(shard, conn);
    return;
  }
  process_lines(shard, conn);
  flush(shard, conn);
}

void Reactor::process_lines(Shard& shard, Connection* conn) {
  // Re-entry guard: with reads paused (EOF half-close, drain) an inline
  // predict completion lands in complete_local while this loop is on the
  // stack; recursing back in here would nest one stack frame per buffered
  // line — a remotely triggerable stack overflow for a client that
  // pipelines thousands of lines and then shutdown(SHUT_WR). The enclosing
  // loop already consumes the remaining buffered lines.
  if (conn->processing) return;
  conn->processing = true;
  const ProcessingGuard guard{conn->processing};
  for (;;) {
    if (conn->in_flight() >= options_.max_pipeline) {
      // Backpressure: further lines stay in the read buffer (and the
      // socket) until responses drain; complete_local resumes us.
      if (!conn->paused_read) {
        conn->paused_read = true;
        update_interest(shard, conn);
      }
      return;
    }
    std::optional<std::string> line = conn->next_line(options_.max_line_bytes);
    if (!line) return;
    if (conn->take_overlong()) {
      conn->complete(conn->allocate_seq(),
                     error_json(ErrorCode::kLineTooLong, "request line too long") + "\n");
      continue;
    }
    if (conn->http_mode) {
      if (!line->empty()) continue;  // header line; swallow
      // Blank line ends the headers: answer and close (Connection: close).
      conn->complete(conn->allocate_seq(),
                     handle_http(conn->http_method, conn->http_path));
      conn->close_after_flush = true;
      if (!conn->paused_read) {
        conn->paused_read = true;
        update_interest(shard, conn);
      }
      return;
    }
    if (line->empty()) continue;
    if (line->rfind("GET ", 0) == 0 || line->rfind("HEAD ", 0) == 0) {
      const std::size_t space = line->find(' ');
      const std::size_t path_end = line->find(' ', space + 1);
      conn->http_method = line->substr(0, space);
      conn->http_path = line->substr(
          space + 1, path_end == std::string::npos ? std::string::npos
                                                   : path_end - space - 1);
      conn->http_mode = true;
      continue;
    }
    handle_request(shard, conn, *line);
  }
}

void Reactor::handle_request(Shard& shard, Connection* conn, const std::string& line) {
  const std::uint64_t seq = conn->allocate_seq();
  Shard::bump(shard.requests);

  ProtocolError perr;
  const std::optional<Request> request = parse_request(line, perr);
  if (!request) {
    conn->complete(seq, error_json(perr) + "\n");
    return;
  }
  if (request->cmd != Request::Cmd::kPredict) {
    conn->complete(seq, handle_verb(*request) + "\n");
    return;
  }

  // Predict: hand off without blocking. The completion may run inline (on
  // this thread — cache hits, validation errors) or on the batcher's
  // dispatcher thread; the weak_ptr keeps a late completion from touching
  // a shard whose loop has exited.
  Request envelope;
  envelope.version = request->version;
  envelope.id_json = request->id_json;
  const std::uint64_t conn_id = conn->id();
  std::weak_ptr<Shard> weak = shards_[shard.index];
  service_.predict_async(
      request->predict,
      [this, weak = std::move(weak), conn_id, seq,
       envelope = std::move(envelope)](PredictResponse response) {
        std::string out = to_json(response, envelope);
        out.push_back('\n');
        const std::shared_ptr<Shard> locked = weak.lock();
        if (!locked) return;
        if (std::this_thread::get_id() ==
            locked->thread_id.load(std::memory_order_acquire)) {
          // Inline completion on the owning reactor thread: the enclosing
          // read handler flushes after line processing.
          const auto it = locked->conns.find(conn_id);
          if (it != locked->conns.end()) {
            complete_local(*locked, it->second.get(), seq, std::move(out));
          }
          return;
        }
        const std::lock_guard lock(locked->mutex);
        if (locked->closed) return;  // shard already shut down; drop
        locked->inbox.push_back({conn_id, seq, std::move(out)});
        std::uint64_t wake = 1;
        [[maybe_unused]] const ssize_t w = ::write(locked->wake_fd, &wake, sizeof(wake));
      });
}

void Reactor::complete_local(Shard& shard, Connection* conn, std::uint64_t seq,
                             std::string line) {
  conn->complete(seq, std::move(line));
  if (conn->paused_read && conn->in_flight() < options_.max_pipeline) {
    if (!conn->close_after_flush) {
      conn->paused_read = false;
      update_interest(shard, conn);
    }
    // Lines that were waiting on the pipeline cap (or buffered before a
    // drain began) are ready now. When process_lines is already on the
    // stack (inline completion) its loop picks them up — don't recurse.
    if (conn->has_buffered_input() && !conn->processing) process_lines(shard, conn);
  }
}

bool Reactor::flush(Shard& shard, Connection* conn) {
  while (conn->has_output()) {
    iovec iov[16];
    int count = 0;
    std::size_t total = 0;
    for (const std::string& s : conn->output()) {
      if (count == 16) break;
      const char* base = s.data();
      std::size_t len = s.size();
      if (count == 0) {
        base += conn->write_offset();
        len -= conn->write_offset();
      }
      iov[count].iov_base = const_cast<char*>(base);
      iov[count].iov_len = len;
      total += len;
      ++count;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(count);
    const ssize_t w = ::sendmsg(conn->fd(), &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        Shard::bump(shard.partial_writes);
        if (!conn->want_write) {
          conn->want_write = true;
          update_interest(shard, conn);
        }
        return true;
      }
      close_connection(shard, conn);
      return false;
    }
    conn->consume_output(static_cast<std::size_t>(w));
    if (static_cast<std::size_t>(w) < total) Shard::bump(shard.partial_writes);
  }
  if (conn->want_write) {
    conn->want_write = false;
    update_interest(shard, conn);
  }
  if (conn->close_after_flush && conn->idle()) {
    close_connection(shard, conn);
    return false;
  }
  return true;
}

void Reactor::close_connection(Shard& shard, Connection* conn) {
  if (conn->dead) return;  // already closed earlier in this event batch
  conn->dead = true;
  ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, conn->fd(), nullptr);
  ::close(conn->fd());
  // Defer the delete to the end of the current epoll batch: the kernel
  // delivers EPOLLHUP/EPOLLERR regardless of the interest mask, so a later
  // events[] entry from the same epoll_wait may still hold this pointer.
  const auto it = shard.conns.find(conn->id());
  if (it != shard.conns.end()) {
    shard.graveyard.push_back(std::move(it->second));
    shard.conns.erase(it);
  }
}

void Reactor::update_interest(Shard& shard, Connection* conn) {
  epoll_event ev{};
  ev.events = 0;
  if (!conn->paused_read) ev.events |= EPOLLIN;
  if (conn->want_write) ev.events |= EPOLLOUT;
  ev.data.ptr = conn;
  ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_MOD, conn->fd(), &ev);
}

#else  // !EVOFORECAST_HAVE_EPOLL

void Reactor::start() {
  throw std::runtime_error("Reactor: epoll is Linux-only; no transport on this platform");
}
void Reactor::stop() {}
void Reactor::enter_drain(Shard&) {}
void Reactor::shard_loop(Shard&) {}
void Reactor::handle_accept(Shard&) {}
void Reactor::adopt(Shard&, int) {}
void Reactor::drain_inbox(Shard&) {}
void Reactor::handle_readable(Shard&, Connection*) {}
void Reactor::process_lines(Shard&, Connection*) {}
void Reactor::handle_request(Shard&, Connection*, const std::string&) {}
void Reactor::complete_local(Shard&, Connection*, std::uint64_t, std::string) {}
bool Reactor::flush(Shard&, Connection*) { return false; }
void Reactor::close_connection(Shard&, Connection*) {}
void Reactor::update_interest(Shard&, Connection*) {}

#endif  // EVOFORECAST_HAVE_EPOLL

std::string Reactor::handle_verb(const Request& request) {
  const std::string env = envelope_json(request);
  switch (request.cmd) {
    case Request::Cmd::kPing:
      return "{\"ok\":true" + env + ",\"pong\":true}";
    case Request::Cmd::kModels: {
      std::string out = "{\"ok\":true" + env + ",\"models\":[";
      bool first = true;
      for (const std::string& name : service_.store().names()) {
        const auto model = service_.store().get(name);
        if (!model) continue;
        if (!first) out += ",";
        first = false;
        out += "{\"name\":\"" + json_escape(name) + "\"";
        out += ",\"version\":" + std::to_string(model->version());
        out += ",\"rules\":" + std::to_string(model->system().size());
        out += ",\"window\":" + std::to_string(model->window()) + "}";
      }
      out += "]";
      // Container-backed series ride in their own section: every id is
      // predictable by name, versioned by the container generation. The id
      // list is capped so a million-series fleet answers in one line;
      // "series_total" carries the true count.
      if (const auto info = service_.store().container_info()) {
        constexpr std::size_t kMaxListedSeries = 256;
        out += ",\"container\":{\"path\":\"" + json_escape(info->path) + "\"";
        out += ",\"generation\":" + std::to_string(info->generation);
        out += ",\"bytes\":" + std::to_string(info->bytes);
        out += ",\"materialized\":" + std::to_string(info->materialized);
        out += ",\"series_total\":" + std::to_string(info->models);
        out += ",\"series\":[";
        bool first_id = true;
        for (const std::string& id : service_.store().container_ids(kMaxListedSeries)) {
          if (!first_id) out += ",";
          first_id = false;
          out += "\"" + json_escape(id) + "\"";
        }
        out += "]}";
      }
      out += "}";
      return out;
    }
    case Request::Cmd::kStats: {
      const auto cache = service_.cache_stats();
      std::string out = "{\"ok\":true" + env;
      out += ",\"connections\":" + std::to_string(connections_served());
      out += ",\"cache_hits\":" + std::to_string(cache.hits);
      out += ",\"cache_misses\":" + std::to_string(cache.misses);
      out += ",\"cache_entries\":" + std::to_string(cache.entries);
      out += ",\"cache_evictions\":" + std::to_string(cache.evictions);
      out += "}";
      return out;
    }
    case Request::Cmd::kMetrics: {
      // The exposition text is multi-line; ship it JSON-escaped inside the
      // one-line envelope so JSON-lines framing survives. HTTP clients get
      // the raw text via GET /metrics instead.
      std::string out = "{\"ok\":true" + env + ",\"format\":\"prometheus\",\"exposition\":\"";
      out += json_escape(obs::prometheus_text());
      out += "\"}";
      return out;
    }
    case Request::Cmd::kTrace: {
      // Chrome trace-event document embedded as a JSON value (it is already
      // valid JSON, depth 3 — well inside the parser's depth limit). Clients
      // save response["trace"] to a file and open it in Perfetto.
      char rate[32];
      std::snprintf(rate, sizeof(rate), "%g", obs::Timeline::sample_rate());
      std::string out = "{\"ok\":true" + env + ",\"enabled\":";
      out += obs::Timeline::enabled() ? "true" : "false";
      out += ",\"sample\":";
      out += rate;
      out += ",\"trace\":";
      out += obs::chrome_trace_json();
      out += "}";
      return out;
    }
    case Request::Cmd::kEvents: {
      const auto events = obs::EventLog::global().recent();
      std::string out = "{\"ok\":true" + env + ",\"dropped\":";
      out += std::to_string(obs::EventLog::global().dropped());
      out += ",\"events\":[";
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (i != 0) out += ',';
        out += events[i].to_json();
      }
      out += "]}";
      return out;
    }
    case Request::Cmd::kObserve: {
      QualityTracker* quality = service_.quality();
      if (quality == nullptr) {
        return error_json(ErrorCode::kBadRequest, "quality tracking is disabled",
                          request.version, request.id_json);
      }
      // Reject observations for models the store cannot resolve: a typo'd
      // name must not silently grow its own quality state.
      if (!service_.store().get(request.predict.model)) {
        return error_json(ErrorCode::kUnknownModel,
                          "unknown model '" + request.predict.model + "'",
                          request.version, request.id_json);
      }
      const QualityTracker::ObserveResult r = quality->observe(
          request.predict.model, request.observe.value, request.observe.t);
      std::string out = "{\"ok\":true" + env;
      out += ",\"model\":\"" + json_escape(request.predict.model) + "\"";
      out += ",\"tick\":" + std::to_string(r.tick);
      out += ",\"matured\":" + std::to_string(r.matured);
      out += ",\"overdue\":" + std::to_string(r.overdue);
      out += ",\"pending\":" + std::to_string(r.pending);
      out += ",\"stale\":";
      out += r.stale ? "true" : "false";
      if (r.drift_detected) out += ",\"drift\":\"detected\"";
      if (r.drift_cleared) out += ",\"drift\":\"cleared\"";
      out += "}";
      return out;
    }
    case Request::Cmd::kQuality: {
      const QualityTracker* quality = service_.quality();
      std::string out = "{\"ok\":true" + env + ",\"enabled\":";
      out += quality != nullptr ? "true" : "false";
      out += ",\"armed\":";
      out += (quality != nullptr && quality->armed()) ? "true" : "false";
      out += ",\"models\":[";
      if (quality != nullptr) {
        bool first = true;
        for (const QualityTracker::ModelSnapshot& m : quality->snapshot()) {
          if (request.has_model && m.model != request.predict.model) continue;
          if (!first) out += ',';
          first = false;
          out += "{\"model\":\"" + json_escape(m.model) + "\"";
          out += ",\"tick\":" + std::to_string(m.tick);
          out += ",\"pending\":" + std::to_string(m.pending);
          out += ",\"observed\":" + std::to_string(m.observed);
          out += ",\"matured\":" + std::to_string(m.matured);
          out += ",\"scored\":" + std::to_string(m.scored);
          out += ",\"overdue\":" + std::to_string(m.overdue);
          out += ",\"stale\":" + std::to_string(m.stale);
          out += ",\"evicted\":" + std::to_string(m.evicted);
          out += ",\"window\":" + std::to_string(m.window_n);
          // Accuracy stats are null until the window has scored forecasts —
          // a fresh model reports "unknown", never a fake 0.0.
          out += ",\"rmse\":" +
                 (m.window_scored > 0 ? json_number(m.rmse) : std::string("null"));
          out += ",\"mae\":" +
                 (m.window_scored > 0 ? json_number(m.mae) : std::string("null"));
          out += ",\"smape\":" +
                 (m.window_scored > 0 ? json_number(m.smape) : std::string("null"));
          out += ",\"coverage\":" +
                 (m.window_intervals > 0 ? json_number(m.coverage) : std::string("null"));
          out += ",\"abstain_share\":" + json_number(m.abstain_share);
          out += ",\"drift\":{\"drifted\":";
          out += m.drifted ? "true" : "false";
          out += ",\"detections\":" + std::to_string(m.drift_detections);
          out += ",\"stat\":" + json_number(m.drift_stat);
          out += "}}";
        }
      }
      out += "]}";
      return out;
    }
    case Request::Cmd::kPredict:
      break;
  }
  return error_json(ErrorCode::kInternal, "verb dispatched to the wrong handler",
                    request.version, request.id_json);
}

std::string Reactor::handle_http(std::string_view method, std::string_view path) {
  const std::string_view bare_path = path.substr(0, path.find('?'));
  std::string status = "200 OK";
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (bare_path == "/metrics") {
    EVOFORECAST_COUNT("serve.http_scrapes", 1);
    body = obs::prometheus_text();
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found: only /metrics is served here\n";
  }
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (method != "HEAD") out += body;
  return out;
}

}  // namespace ef::serve
