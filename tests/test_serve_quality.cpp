// Forecast-quality tracking: lazy arming, ledger ring wraparound,
// out-of-order/duplicate actuals, overdue gap handling, rolling-stat
// exactness, interval coverage, bounded-cardinality exposition, and the
// interval/ledger plumbing through ForecastService. The quality layer is a
// product feature, not instrumentation — this whole file passes unchanged
// under EVOFORECAST_OBS=OFF (the obs-off CI job runs it).
#include "serve/quality.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "core/interval.hpp"
#include "core/rule.hpp"
#include "core/rule_system.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"

namespace {

using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystem;
using ef::serve::ForecastService;
using ef::serve::ModelStore;
using ef::serve::PredictRequest;
using ef::serve::QualityOptions;
using ef::serve::QualityTracker;
using ef::serve::ServeOptions;

QualityOptions small_options(std::size_t ledger = 8, std::size_t window = 8) {
  QualityOptions options;
  options.ledger_capacity = ledger;
  options.window = window;
  return options;
}

TEST(QualityTracker, DisarmedUntilFirstObserve) {
  QualityTracker tracker(small_options());
  EXPECT_FALSE(tracker.armed());

  // Pre-arming forecasts are the hot-path no-op: nothing is tracked.
  tracker.record_forecast("m", 1, 0.5, 0.1, false);
  EXPECT_TRUE(tracker.snapshot().empty());

  const auto result = tracker.observe("m", 0.4);
  EXPECT_TRUE(tracker.armed());
  EXPECT_EQ(result.tick, 1u);
  EXPECT_FALSE(result.stale);
  EXPECT_EQ(result.matured, 0u);  // the pre-arming forecast was never recorded
  ASSERT_EQ(tracker.snapshot().size(), 1u);
}

TEST(QualityTracker, RecordTracksOnlyObservedModels) {
  QualityTracker tracker(small_options());
  tracker.observe("known", 0.0);  // arms, creates "known"
  tracker.record_forecast("unknown", 1, 0.5, 0.1, false);
  const auto models = tracker.snapshot();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].model, "known");
}

TEST(QualityTracker, MaturesAtDueTickWithExactStats) {
  QualityTracker tracker(small_options());
  tracker.observe("m", 0.0);                     // tick 1
  tracker.record_forecast("m", 1, 1.0, 0.5, false);  // due tick 2

  const auto result = tracker.observe("m", 1.2);  // tick 2: matures it
  EXPECT_EQ(result.tick, 2u);
  EXPECT_EQ(result.matured, 1u);
  EXPECT_EQ(result.pending, 0u);

  const auto models = tracker.snapshot();
  ASSERT_EQ(models.size(), 1u);
  const auto& m = models[0];
  EXPECT_EQ(m.window_n, 1u);
  EXPECT_EQ(m.window_scored, 1u);
  EXPECT_NEAR(m.mae, 0.2, 1e-12);
  EXPECT_NEAR(m.rmse, 0.2, 1e-12);
  EXPECT_NEAR(m.smape, 200.0 * 0.2 / (1.0 + 1.2), 1e-12);
  // |1.0 - 1.2| = 0.2 <= bound 0.5: the interval covered the actual.
  EXPECT_EQ(m.window_intervals, 1u);
  EXPECT_DOUBLE_EQ(m.coverage, 1.0);
  EXPECT_DOUBLE_EQ(m.abstain_share, 0.0);
}

TEST(QualityTracker, IntervalCoverageCountsMissesAndExclusions) {
  QualityTracker tracker(small_options());
  tracker.observe("m", 0.0);                          // tick 1
  tracker.record_forecast("m", 1, 1.0, 0.1, false);   // miss: err 0.2 > 0.1
  tracker.observe("m", 1.2);                          // tick 2
  tracker.record_forecast("m", 1, 1.0, -1.0, false);  // no interval at all
  tracker.observe("m", 1.0);                          // tick 3

  const auto m = tracker.snapshot()[0];
  EXPECT_EQ(m.window_scored, 2u);
  EXPECT_EQ(m.window_intervals, 1u);  // the bound-less entry is excluded
  EXPECT_DOUBLE_EQ(m.coverage, 0.0);  // the one interval missed
}

TEST(QualityTracker, AbstentionsCountedButNotErrorScored) {
  QualityTracker tracker(small_options());
  tracker.observe("m", 0.0);
  tracker.record_forecast("m", 1, 0.0, -1.0, true);   // abstained
  tracker.record_forecast("m", 1, 2.0, 0.1, false);
  tracker.observe("m", 2.0);

  const auto m = tracker.snapshot()[0];
  EXPECT_EQ(m.matured, 2u);
  EXPECT_EQ(m.scored, 1u);
  EXPECT_EQ(m.window_n, 2u);
  EXPECT_EQ(m.window_scored, 1u);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);  // only the perfect covered forecast scored
  EXPECT_DOUBLE_EQ(m.abstain_share, 0.5);
}

TEST(QualityTracker, StaleAndDuplicateActualsAreIgnored) {
  QualityTracker tracker(small_options());
  tracker.observe("m", 0.0, 5);  // explicit t: tick 5
  tracker.record_forecast("m", 1, 1.0, 0.5, false);

  // t == tick and t < tick are both stale: clock untouched, nothing scored.
  for (const std::uint64_t t : {5ULL, 3ULL}) {
    const auto result = tracker.observe("m", 9.9, t);
    EXPECT_TRUE(result.stale);
    EXPECT_EQ(result.tick, 5u);
    EXPECT_EQ(result.matured, 0u);
    EXPECT_EQ(result.pending, 1u);
  }
  const auto m = tracker.snapshot()[0];
  EXPECT_EQ(m.stale, 2u);
  EXPECT_EQ(m.observed, 1u);
  EXPECT_EQ(m.matured, 0u);

  // The real actual still matures the forecast normally afterwards.
  const auto result = tracker.observe("m", 1.0, 6);
  EXPECT_FALSE(result.stale);
  EXPECT_EQ(result.matured, 1u);
}

TEST(QualityTracker, ClockJumpDropsGapEntriesAsOverdue) {
  QualityTracker tracker(small_options());
  tracker.observe("m", 0.0);                         // tick 1
  tracker.record_forecast("m", 1, 1.0, 0.5, false);  // due tick 2
  tracker.record_forecast("m", 9, 1.0, 0.5, false);  // due tick 10

  const auto result = tracker.observe("m", 1.0, 10);  // jump over tick 2
  EXPECT_EQ(result.tick, 10u);
  EXPECT_EQ(result.overdue, 1u);  // the due-2 entry had no actual, ever
  EXPECT_EQ(result.matured, 1u);  // the due-10 entry matured on arrival
  EXPECT_EQ(result.pending, 0u);
  EXPECT_EQ(tracker.snapshot()[0].overdue, 1u);
}

TEST(QualityTracker, LedgerRingWrapsAndEvicts) {
  QualityTracker tracker(small_options(/*ledger=*/4));
  tracker.observe("m", 0.0);  // tick 1
  for (int i = 0; i < 6; ++i) {
    tracker.record_forecast("m", 1, static_cast<double>(i), 0.5, false);
  }
  auto m = tracker.snapshot()[0];
  EXPECT_EQ(m.pending, 4u);  // ring capacity
  EXPECT_EQ(m.evicted, 2u);  // the two oldest pending forecasts dropped

  const auto result = tracker.observe("m", 4.0);
  EXPECT_EQ(result.matured, 4u);  // survivors (values 2..5) all due tick 2
  EXPECT_EQ(result.pending, 0u);
  // Re-filling after maturation evicts nothing: the slots are free again.
  for (int i = 0; i < 4; ++i) {
    tracker.record_forecast("m", 1, 0.0, 0.5, false);
  }
  EXPECT_EQ(tracker.snapshot()[0].evicted, 2u);
}

TEST(QualityTracker, RollingWindowKeepsOnlyTheLastN) {
  QualityTracker tracker(small_options(/*ledger=*/8, /*window=*/4));
  tracker.observe("m", 0.0);
  // Mature 6 forecasts with absolute errors 1..6 (predicted i, actual 0).
  for (int i = 1; i <= 6; ++i) {
    tracker.record_forecast("m", 1, static_cast<double>(i), -1.0, false);
    tracker.observe("m", 0.0);
  }
  const auto m = tracker.snapshot()[0];
  EXPECT_EQ(m.matured, 6u);
  EXPECT_EQ(m.window_n, 4u);  // errors 1 and 2 rolled out
  EXPECT_NEAR(m.mae, (3.0 + 4.0 + 5.0 + 6.0) / 4.0, 1e-12);
  EXPECT_NEAR(m.rmse, std::sqrt((9.0 + 16.0 + 25.0 + 36.0) / 4.0), 1e-12);
}

TEST(QualityTracker, DriftSignalsSurfaceInObserveResult) {
  QualityOptions options = small_options(/*ledger=*/8, /*window=*/8);
  options.drift.lambda = 2.0;
  options.drift.min_samples = 4;
  options.drift.clear_after = 4;
  QualityTracker tracker(options);
  tracker.observe("m", 0.0);

  // Accurate regime, then the actuals shift far away from the forecasts.
  bool detected = false;
  for (int i = 0; i < 40 && !detected; ++i) {
    tracker.record_forecast("m", 1, 1.0, 0.1, false);
    detected = tracker.observe("m", i < 10 ? 1.0 : 6.0).drift_detected;
  }
  ASSERT_TRUE(detected);
  auto m = tracker.snapshot()[0];
  EXPECT_TRUE(m.drifted);
  EXPECT_EQ(m.drift_detections, 1u);

  // Staying at the (bad) level is the new baseline; it eventually clears.
  bool cleared = false;
  for (int i = 0; i < 40 && !cleared; ++i) {
    tracker.record_forecast("m", 1, 1.0, 0.1, false);
    cleared = tracker.observe("m", 6.0).drift_cleared;
  }
  EXPECT_TRUE(cleared);
  EXPECT_FALSE(tracker.snapshot()[0].drifted);
}

TEST(QualityTracker, ExpositionBoundsCardinalityToTopKPlusFleet) {
  QualityOptions options = small_options();
  options.top_k = 1;
  QualityTracker tracker(options);
  // "bad" carries the larger rolling RMSE, "good" the smaller.
  tracker.observe("bad", 0.0);
  tracker.observe("good", 0.0);
  tracker.record_forecast("bad", 1, 5.0, 0.1, false);
  tracker.observe("bad", 0.0);  // error 5
  tracker.record_forecast("good", 1, 0.1, 0.5, false);
  tracker.observe("good", 0.0);  // error 0.1

  std::string out;
  tracker.render_prometheus(out, {});
  EXPECT_NE(out.find("# TYPE ef_quality_rmse gauge\n"), std::string::npos) << out;
  EXPECT_NE(out.find("ef_quality_rmse{model=\"bad\"} 5"), std::string::npos) << out;
  EXPECT_NE(out.find("ef_quality_rmse{model=\"_fleet\"}"), std::string::npos) << out;
  // top_k = 1: the better model is not exported as its own series.
  EXPECT_EQ(out.find("{model=\"good\"}"), std::string::npos) << out;
  EXPECT_NE(out.find("ef_quality_models 2"), std::string::npos) << out;
  EXPECT_NE(out.find("ef_quality_armed 1"), std::string::npos) << out;
  // Counters follow the Prometheus naming convention checked in CI.
  EXPECT_NE(out.find("# TYPE ef_quality_observed_total counter\n"), std::string::npos);
}

TEST(QualityTracker, UnscoredModelsExportNaNNotZero) {
  QualityTracker tracker(small_options());
  tracker.observe("m", 0.0);  // tracked, but nothing matured yet
  std::string out;
  tracker.render_prometheus(out, {});
  // A fabricated rmse of 0 would read as "perfect"; NaN reads as "no data".
  EXPECT_NE(out.find("ef_quality_rmse{model=\"m\"} NaN"), std::string::npos) << out;
  EXPECT_NE(out.find("ef_quality_coverage_ratio{model=\"m\"} NaN"), std::string::npos);
}

TEST(QualityTracker, ZeroCapacityDisablesTracking) {
  QualityOptions options;
  options.ledger_capacity = 0;
  QualityTracker tracker(options);
  const auto result = tracker.observe("m", 1.0);
  EXPECT_EQ(result.tick, 0u);
  EXPECT_FALSE(tracker.armed());
  EXPECT_TRUE(tracker.snapshot().empty());
  std::string out;
  tracker.render_prometheus(out, {});
}

// --- plumbing through ForecastService -------------------------------------

/// One rule covering [0,2]^2 with a known residual bound, so the expected
/// interval half-width is exactly max_abs_residual.
RuleSystem covering_system() {
  Rule rule({Interval(0.0, 2.0), Interval(0.0, 2.0)});
  ef::core::PredictingPart part;
  part.fit.coeffs = {0.3, 0.6, 0.05};
  part.fit.mean_prediction = 0.5;
  part.fit.max_abs_residual = 0.01;
  part.matches = 5;
  part.fitness = 2.0;
  rule.set_predicting(part);
  RuleSystem system;
  system.add_rules({rule}, false, -1.0);
  return system;
}

PredictRequest request_for(std::vector<double> window, std::size_t horizon = 1) {
  PredictRequest req;
  req.model = "m";
  req.window = std::move(window);
  req.horizon = horizon;
  return req;
}

ServeOptions quality_config() {
  ServeOptions options;
  options.enable_batcher = false;  // deterministic single-thread path
  return options;
}

TEST(ServiceQuality, CoveredPredictCarriesTheRuleBound) {
  ModelStore store;
  store.add_system("m", covering_system());
  ForecastService service(store, quality_config());

  const auto r = service.predict(request_for({0.5, 0.5}));
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.abstain);
  // Single voting rule: bound = its max_abs_residual + |its value − agg| = e.
  EXPECT_DOUBLE_EQ(r.bound, 0.01);

  // Out-of-domain probe abstains and ships no bound.
  const auto abstain = service.predict(request_for({5.0, 5.0}));
  ASSERT_TRUE(abstain.ok);
  EXPECT_TRUE(abstain.abstain);
  EXPECT_LT(abstain.bound, 0.0);

  // Iterated chains do not compose the one-step bound.
  const auto multi = service.predict(request_for({0.5, 0.5}, 3));
  ASSERT_TRUE(multi.ok);
  EXPECT_FALSE(multi.abstain);
  EXPECT_LT(multi.bound, 0.0);
}

TEST(ServiceQuality, CacheHitsReturnTheOriginalBound) {
  ModelStore store;
  store.add_system("m", covering_system());
  ForecastService service(store, quality_config());

  const auto cold = service.predict(request_for({0.25, 0.75}));
  ASSERT_TRUE(cold.ok);
  EXPECT_FALSE(cold.cached);
  const auto hit = service.predict(request_for({0.25, 0.75}));
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.cached);
  EXPECT_DOUBLE_EQ(hit.bound, cold.bound);
}

TEST(ServiceQuality, ServiceFeedsTheLedgerOnceArmed) {
  ModelStore store;
  store.add_system("m", covering_system());
  ForecastService service(store, quality_config());
  ASSERT_NE(service.quality(), nullptr);

  // Unarmed: predictions leave no quality state behind.
  ASSERT_TRUE(service.predict(request_for({0.5, 0.5})).ok);
  EXPECT_TRUE(service.quality()->snapshot().empty());

  // Arm with an actual, predict, and the forecast lands in the ledger.
  service.quality()->observe("m", 0.5);
  PredictRequest fresh = request_for({0.5, 0.6});
  fresh.use_cache = false;
  ASSERT_TRUE(service.predict(fresh).ok);
  const auto models = service.quality()->snapshot();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].pending, 1u);

  const auto result = service.quality()->observe("m", 0.66);
  EXPECT_EQ(result.matured, 1u);
}

TEST(ServiceQuality, DisabledByOptionsMeansNoTracker) {
  ModelStore store;
  store.add_system("m", covering_system());
  ServeOptions options = quality_config();
  options.quality.ledger_capacity = 0;
  ForecastService service(store, options);
  EXPECT_EQ(service.quality(), nullptr);
  // Forecasts are untouched by the absence of tracking.
  const auto r = service.predict(request_for({0.5, 0.5}));
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.bound, 0.01);
}

}  // namespace
