#include "obs/events.hpp"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ef::obs {
namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_field_value(std::string& out, const EventField& field) {
  char buf[64];
  switch (field.kind) {
    case EventField::Kind::kBool:
      out += field.b ? "true" : "false";
      return;
    case EventField::Kind::kInt:
      std::snprintf(buf, sizeof buf, "%" PRId64, field.i);
      out += buf;
      return;
    case EventField::Kind::kUint:
      std::snprintf(buf, sizeof buf, "%" PRIu64, field.u);
      out += buf;
      return;
    case EventField::Kind::kDouble:
      if (std::isfinite(field.d)) {
        std::snprintf(buf, sizeof buf, "%.17g", field.d);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN literals
      }
      return;
    case EventField::Kind::kString:
      out += '"';
      append_escaped(out, field.s);
      out += '"';
      return;
  }
}

std::int64_t wall_clock_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string Event::to_json() const {
  std::string out;
  out.reserve(128);
  char buf[64];
  out += "{\"seq\":";
  std::snprintf(buf, sizeof buf, "%" PRIu64, seq);
  out += buf;
  out += ",\"ts_ms\":";
  std::snprintf(buf, sizeof buf, "%" PRId64, ts_ms);
  out += buf;
  out += ",\"kind\":\"";
  append_escaped(out, kind);
  out += '"';
  for (const auto& field : fields) {
    out += ",\"";
    append_escaped(out, field.key);
    out += "\":";
    append_field_value(out, field);
  }
  out += '}';
  return out;
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

EventLog::~EventLog() {
  if (sink_ != nullptr) std::fclose(sink_);
}

void EventLog::emit(std::string_view kind, std::vector<EventField> fields) {
  Event event;
  event.ts_ms = wall_clock_ms();
  event.kind = std::string(kind);
  event.fields = std::move(fields);

  const std::lock_guard lock(mutex_);
  event.seq = next_seq_++;
  if (sink_ != nullptr) {
    const std::string line = event.to_json();
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fputc('\n', sink_);
    std::fflush(sink_);
  }
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(event));
}

std::vector<Event> EventLog::recent() const {
  const std::lock_guard lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::string EventLog::dump_json_lines() const {
  const std::lock_guard lock(mutex_);
  std::string out;
  out.reserve(ring_.size() * 128);
  for (const auto& event : ring_) {
    out += event.to_json();
    out += '\n';
  }
  return out;
}

std::size_t EventLog::size() const {
  const std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t EventLog::dropped() const {
  const std::lock_guard lock(mutex_);
  return dropped_;
}

std::uint64_t EventLog::total_emitted() const {
  const std::lock_guard lock(mutex_);
  return next_seq_ - 1;
}

bool EventLog::set_file_sink(const std::string& path) {
  const std::lock_guard lock(mutex_);
  if (sink_ != nullptr) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
  if (path.empty()) return true;
  sink_ = std::fopen(path.c_str(), "a");
  return sink_ != nullptr;
}

bool EventLog::has_file_sink() const {
  const std::lock_guard lock(mutex_);
  return sink_ != nullptr;
}

void EventLog::clear() {
  const std::lock_guard lock(mutex_);
  ring_.clear();
}

EventLog& EventLog::global() {
  static EventLog* log = [] {
    std::size_t capacity = 2048;
    if (const char* env = std::getenv("EVOFORECAST_EVENT_CAPACITY")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) capacity = static_cast<std::size_t>(parsed);
    }
    auto* instance = new EventLog(capacity);  // leaked: must outlive all threads
    if (const char* path = std::getenv("EVOFORECAST_EVENT_LOG")) {
      if (path[0] != '\0' && !instance->set_file_sink(path)) {
        std::fprintf(stderr, "evoforecast: cannot open EVOFORECAST_EVENT_LOG=%s\n", path);
      }
    }
    return instance;
  }();
  return *log;
}

}  // namespace ef::obs
