#include "core/pittsburgh.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/init.hpp"
#include "core/mutation.hpp"

namespace ef::core {

void PittsburghConfig::validate() const {
  if (population_size < 2) {
    throw std::invalid_argument("PittsburghConfig: population_size must be >= 2");
  }
  if (rules_per_individual == 0 || min_rules == 0) {
    throw std::invalid_argument("PittsburghConfig: rule counts must be >= 1");
  }
  if (min_rules > max_rules || rules_per_individual > max_rules) {
    throw std::invalid_argument("PittsburghConfig: need min_rules <= sizes <= max_rules");
  }
  if (elite_count >= population_size) {
    throw std::invalid_argument("PittsburghConfig: elite_count must be < population_size");
  }
  if (tournament_rounds == 0) {
    throw std::invalid_argument("PittsburghConfig: tournament_rounds must be >= 1");
  }
  if (emax <= 0.0) throw std::invalid_argument("PittsburghConfig: emax must be > 0");
  for (const double p : {rule_mutation_prob, add_rule_prob, delete_rule_prob,
                         wildcard_toggle_prob}) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument("PittsburghConfig: probability out of [0,1]");
    }
  }
  if (mutation_scale <= 0.0) {
    throw std::invalid_argument("PittsburghConfig: mutation_scale must be > 0");
  }
}

PittsburghEngine::PittsburghEngine(const WindowDataset& data, PittsburghConfig config,
                                   util::ThreadPool* pool)
    : data_(data),
      config_(config),
      engine_(data, pool),
      rule_eval_config_([&] {
        EvolutionConfig adapter;
        adapter.emax = config.emax;
        adapter.f_min = -1.0;
        adapter.mutation_prob = config.rule_mutation_prob;
        adapter.mutation_scale = config.mutation_scale;
        adapter.wildcard_toggle_prob = config.wildcard_toggle_prob;
        adapter.seed = config.seed;
        return adapter;
      }()),
      evaluator_(engine_, rule_eval_config_),
      rng_(config.seed) {
  config_.validate();
  population_.reserve(config_.population_size);
  for (std::size_t i = 0; i < config_.population_size; ++i) {
    population_.push_back(make_random_individual());
  }
}

Rule PittsburghEngine::make_random_rule() {
  // Sample one stratified-style rule: bounding box of the patterns whose
  // target lies in a random sub-interval of the output range, which gives
  // Pittsburgh the same informed raw material as the Michigan init.
  const double lo = data_.target_min();
  const double hi = data_.target_max();
  const double width = (hi - lo) / 10.0;
  const double start = rng_.uniform(lo, hi - width > lo ? hi - width : lo);

  std::vector<double> mins(data_.window(), 0.0);
  std::vector<double> maxs(data_.window(), 0.0);
  bool any = false;
  for (std::size_t i = 0; i < data_.count(); ++i) {
    const double v = data_.target(i);
    if (v < start || v > start + width) continue;
    const auto w = data_.pattern(i);
    if (!any) {
      for (std::size_t j = 0; j < w.size(); ++j) mins[j] = maxs[j] = w[j];
      any = true;
    } else {
      for (std::size_t j = 0; j < w.size(); ++j) {
        mins[j] = std::min(mins[j], w[j]);
        maxs[j] = std::max(maxs[j], w[j]);
      }
    }
  }
  std::vector<Interval> genes;
  genes.reserve(data_.window());
  for (std::size_t j = 0; j < data_.window(); ++j) {
    if (any) {
      genes.emplace_back(mins[j], maxs[j]);
    } else {
      genes.emplace_back(data_.value_min(), data_.value_max());
    }
  }
  return Rule(std::move(genes));
}

RuleSetIndividual PittsburghEngine::make_random_individual() {
  RuleSetIndividual individual;
  individual.rules.reserve(config_.rules_per_individual);
  for (std::size_t r = 0; r < config_.rules_per_individual; ++r) {
    individual.rules.push_back(make_random_rule());
  }
  evaluate_individual(individual);
  return individual;
}

void PittsburghEngine::evaluate_individual(RuleSetIndividual& individual) {
  // Refit every rule's predicting part on its own matched windows (the same
  // derivation the Michigan evaluator uses), then score the SET.
  for (Rule& rule : individual.rules) {
    evaluator_.evaluate(rule);
    ++evaluations_;
  }

  double fitness = 0.0;
  double abs_err_sum = 0.0;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < data_.count(); ++i) {
    const auto window = data_.pattern(i);
    double vote_sum = 0.0;
    std::size_t votes = 0;
    for (const Rule& rule : individual.rules) {
      if (rule.matches(window)) {
        vote_sum += rule.forecast(window);
        ++votes;
      }
    }
    if (votes == 0) continue;
    ++covered;
    const double err = std::abs(vote_sum / static_cast<double>(votes) - data_.target(i));
    abs_err_sum += err;
    fitness += config_.emax - err;
  }
  individual.fitness = fitness;
  individual.coverage_percent =
      data_.count() ? 100.0 * static_cast<double>(covered) / static_cast<double>(data_.count())
                    : 0.0;
  individual.mean_abs_error = covered ? abs_err_sum / static_cast<double>(covered) : 0.0;
}

void PittsburghEngine::step() {
  ++generation_;

  std::vector<std::size_t> order(population_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(config_.elite_count),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return population_[a].fitness > population_[b].fitness;
                    });

  std::vector<RuleSetIndividual> next;
  next.reserve(population_.size());
  for (std::size_t e = 0; e < config_.elite_count; ++e) next.push_back(population_[order[e]]);

  const auto tournament = [&]() -> const RuleSetIndividual& {
    std::size_t best = rng_.index(population_.size());
    for (std::size_t round = 1; round < config_.tournament_rounds; ++round) {
      const std::size_t challenger = rng_.index(population_.size());
      if (population_[challenger].fitness > population_[best].fitness) best = challenger;
    }
    return population_[best];
  };

  while (next.size() < population_.size()) {
    const RuleSetIndividual& a = tournament();
    const RuleSetIndividual& b = tournament();

    // One-point set crossover: prefix of A's rules + suffix of B's.
    RuleSetIndividual child;
    const std::size_t cut_a = rng_.index(a.rules.size() + 1);
    const std::size_t cut_b = rng_.index(b.rules.size() + 1);
    child.rules.assign(a.rules.begin(), a.rules.begin() + static_cast<std::ptrdiff_t>(cut_a));
    child.rules.insert(child.rules.end(),
                       b.rules.begin() + static_cast<std::ptrdiff_t>(cut_b), b.rules.end());
    if (child.rules.empty()) child.rules.push_back(make_random_rule());
    if (child.rules.size() > config_.max_rules) child.rules.resize(config_.max_rules);

    // Structural mutations.
    if (rng_.bernoulli(config_.add_rule_prob) && child.rules.size() < config_.max_rules) {
      child.rules.push_back(make_random_rule());
    }
    if (rng_.bernoulli(config_.delete_rule_prob) && child.rules.size() > config_.min_rules) {
      const std::size_t victim = rng_.index(child.rules.size());
      child.rules.erase(child.rules.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    // Per-rule interval mutations (reuses the Michigan operators).
    for (Rule& rule : child.rules) {
      mutate_rule(rule, data_, rule_eval_config_, rng_);
    }

    evaluate_individual(child);
    next.push_back(std::move(child));
  }
  population_ = std::move(next);
}

void PittsburghEngine::run() {
  while (generation_ < config_.generations) step();
}

void PittsburghEngine::run_evaluations(std::size_t budget) {
  while (evaluations_ < budget) step();
}

const RuleSetIndividual& PittsburghEngine::best() const {
  if (population_.empty()) throw std::logic_error("PittsburghEngine::best: empty population");
  const RuleSetIndividual* best = &population_.front();
  for (const auto& individual : population_) {
    if (individual.fitness > best->fitness) best = &individual;
  }
  return *best;
}

RuleSystem PittsburghEngine::best_system() const {
  RuleSystem system;
  system.add_rules(std::vector<Rule>(best().rules), /*discard_unfit=*/false,
                   -std::numeric_limits<double>::infinity());
  return system;
}

}  // namespace ef::core
