#include "baselines/forecaster.hpp"

namespace ef::baselines {

std::vector<double> Forecaster::predict_all(const core::WindowDataset& data) const {
  std::vector<double> out;
  out.reserve(data.count());
  for (std::size_t i = 0; i < data.count(); ++i) out.push_back(predict(data.pattern(i)));
  return out;
}

}  // namespace ef::baselines
