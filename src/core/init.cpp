#include "core/init.hpp"

#include <algorithm>
#include <stdexcept>

namespace ef::core {

std::vector<Rule> init_output_stratified(const WindowDataset& data,
                                         std::size_t population_size) {
  if (population_size == 0) {
    throw std::invalid_argument("init_output_stratified: population_size must be > 0");
  }
  const std::size_t d = data.window();
  const double out_lo = data.target_min();
  const double out_hi = data.target_max();
  const double step = (out_hi - out_lo) / static_cast<double>(population_size);

  // Fallback gene box: the full input range (used for empty sub-intervals
  // and for a degenerate target range).
  const Interval full_range(data.value_min(), data.value_max());

  std::vector<Rule> population;
  population.reserve(population_size);

  for (std::size_t p = 0; p < population_size; ++p) {
    const double interval_lo = out_lo + static_cast<double>(p) * step;
    // Last stratum closes at out_hi inclusive so the max target is covered.
    const double interval_hi =
        (p + 1 == population_size) ? out_hi : out_lo + static_cast<double>(p + 1) * step;

    // Bounding box over the patterns whose target falls in the stratum.
    std::vector<double> mins(d, 0.0);
    std::vector<double> maxs(d, 0.0);
    bool any = false;
    for (std::size_t i = 0; i < data.count(); ++i) {
      const double v = data.target(i);
      const bool inside = (p + 1 == population_size) ? (interval_lo <= v && v <= interval_hi)
                                                     : (interval_lo <= v && v < interval_hi);
      if (!inside) continue;
      const auto window = data.pattern(i);
      if (!any) {
        for (std::size_t j = 0; j < d; ++j) mins[j] = maxs[j] = window[j];
        any = true;
      } else {
        for (std::size_t j = 0; j < d; ++j) {
          mins[j] = std::min(mins[j], window[j]);
          maxs[j] = std::max(maxs[j], window[j]);
        }
      }
    }

    std::vector<Interval> genes;
    genes.reserve(d);
    if (any) {
      for (std::size_t j = 0; j < d; ++j) genes.emplace_back(mins[j], maxs[j]);
    } else {
      genes.assign(d, full_range);
    }
    population.emplace_back(std::move(genes));
  }
  return population;
}

std::vector<Rule> init_uniform_random(const WindowDataset& data, std::size_t population_size,
                                      util::Rng& rng, double wildcard_prob) {
  if (population_size == 0) {
    throw std::invalid_argument("init_uniform_random: population_size must be > 0");
  }
  const std::size_t d = data.window();
  const double lo = data.value_min();
  const double hi = data.value_max();

  std::vector<Rule> population;
  population.reserve(population_size);
  for (std::size_t p = 0; p < population_size; ++p) {
    std::vector<Interval> genes;
    genes.reserve(d);
    for (std::size_t j = 0; j < d; ++j) {
      if (rng.bernoulli(wildcard_prob)) {
        genes.push_back(Interval::wildcard());
        continue;
      }
      double a = rng.uniform(lo, hi);
      double b = rng.uniform(lo, hi);
      if (a > b) std::swap(a, b);
      genes.emplace_back(a, b);
    }
    population.emplace_back(std::move(genes));
  }
  return population;
}

std::vector<Rule> initialize_population(const WindowDataset& data,
                                        const EvolutionConfig& config, util::Rng& rng) {
  switch (config.init) {
    case InitStrategy::kOutputStratified:
      return init_output_stratified(data, config.population_size);
    case InitStrategy::kUniformRandom:
      return init_uniform_random(data, config.population_size, rng);
  }
  throw std::logic_error("initialize_population: unknown strategy");
}

}  // namespace ef::core
