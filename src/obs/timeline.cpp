#include "obs/timeline.hpp"

#if EVOFORECAST_OBS_ENABLED

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

namespace ef::obs {
namespace {

constexpr std::size_t kDefaultRingCapacity = 8192;
constexpr std::size_t kSlowTraceCapacity = 128;

/// One ring slot. Every field is an atomic so the seqlock read side is
/// data-race-free under TSan (fences are invisible to it); the writer is
/// always the ring-owning thread, so relaxed stores bracketed by the seq
/// release are enough. An odd `seq` marks a slot mid-write.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> span_id{0};
  std::atomic<std::uint64_t> parent_id{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::int64_t> t_start_us{0};
  std::atomic<std::int64_t> dur_us{0};
  std::atomic<const char*> arg_key{nullptr};
  std::atomic<double> arg_value{0.0};
  std::atomic<bool> sampled{false};
};

/// Fixed-capacity span ring with exactly one writer (the owning thread).
/// Readers (snapshot) come from any thread and tolerate concurrent writes
/// via the per-slot seqlock.
struct Ring {
  Ring(std::size_t capacity, std::uint32_t index)
      : slots(capacity), thread_index(index) {}

  std::vector<Slot> slots;  ///< fixed at construction; never resized
  std::atomic<std::uint64_t> head{0};
  std::uint32_t thread_index;
};

double env_double(const char* name, double fallback) {
  const char* text = std::getenv(name);
  if (!text || !*text) return fallback;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text) return fallback;
  return value;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* text = std::getenv(name);
  if (!text || !*text) return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || value == 0) return fallback;
  return static_cast<std::size_t>(value);
}

struct State {
  std::atomic<bool> enabled{false};
  /// sample_rate mapped onto [0, 2^32]: a trace is head-sampled when a
  /// 32-bit uniform draw lands strictly below this threshold.
  std::atomic<std::uint64_t> sample_threshold{0};
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::size_t> ring_capacity{kDefaultRingCapacity};

  std::mutex mutex;  ///< guards rings / free_rings / slow / rate (cold paths)
  std::vector<std::shared_ptr<Ring>> rings;
  std::vector<std::shared_ptr<Ring>> free_rings;  ///< rings of exited threads
  std::uint32_t next_thread_index = 0;
  std::deque<TimelineSnapshot::SlowTrace> slow;
  double rate = 0.0;

  State() {
    set_rate(env_double("EVOFORECAST_TRACE_SAMPLE", 0.0));
    ring_capacity.store(env_size("EVOFORECAST_TRACE_CAPACITY", kDefaultRingCapacity),
                        std::memory_order_relaxed);
  }

  void set_rate(double r) {
    if (r < 0.0) r = 0.0;
    if (r > 1.0) r = 1.0;
    const std::lock_guard<std::mutex> lock(mutex);
    rate = r;
    sample_threshold.store(
        static_cast<std::uint64_t>(r * 4294967296.0 /* 2^32 */),
        std::memory_order_relaxed);
    enabled.store(r > 0.0, std::memory_order_relaxed);
  }
};

State& state() {
  static State* instance = new State();  // leaked: emitters may outlive main
  return *instance;
}

thread_local TraceContext t_context;

/// Thread-owned ring handle: acquired lazily on first emit, returned to the
/// free pool at thread exit so short-lived connection threads recycle rings
/// instead of growing the registry without bound. The registry's shared_ptr
/// keeps a parked ring's spans snapshot-able after its thread is gone.
struct RingHandle {
  std::shared_ptr<Ring> ring;

  ~RingHandle() {
    if (!ring) return;
    State& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.free_rings.push_back(std::move(ring));
  }
};

thread_local RingHandle t_ring;

Ring& local_ring() {
  if (!t_ring.ring) {
    State& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.free_rings.empty()) {
      t_ring.ring = std::move(s.free_rings.back());
      s.free_rings.pop_back();
    } else {
      t_ring.ring = std::make_shared<Ring>(
          s.ring_capacity.load(std::memory_order_relaxed), s.next_thread_index++);
      s.rings.push_back(t_ring.ring);
    }
  }
  return *t_ring.ring;
}

std::uint64_t next_id() {
  return state().next_id.fetch_add(1, std::memory_order_relaxed);
}

/// Cheap per-thread xorshift64* for the head-sample draw; seeded from the
/// global id counter so threads diverge.
std::uint32_t sample_draw() {
  thread_local std::uint64_t seed = 0;
  if (seed == 0) seed = 0x9e3779b97f4a7c15ull ^ (next_id() * 0xbf58476d1ce4e5b9ull);
  seed ^= seed >> 12;
  seed ^= seed << 25;
  seed ^= seed >> 27;
  return static_cast<std::uint32_t>((seed * 0x2545f4914f6cdd1dull) >> 32);
}

bool draw_sampled() {
  const std::uint64_t threshold =
      state().sample_threshold.load(std::memory_order_relaxed);
  if (threshold >= 4294967296ull) return true;  // rate == 1.0: skip the draw
  return sample_draw() < threshold;
}

void record(const TraceContext& ctx, std::uint64_t span_id, std::uint64_t parent_id,
            const char* name, std::int64_t t_start_us, std::int64_t dur_us,
            const char* arg_key, double arg_value) {
  Ring& ring = local_ring();
  const std::uint64_t index =
      ring.head.fetch_add(1, std::memory_order_relaxed) % ring.slots.size();
  Slot& slot = ring.slots[index];
  const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);  // odd: mid-write
  slot.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.parent_id.store(parent_id, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.t_start_us.store(t_start_us, std::memory_order_relaxed);
  slot.dur_us.store(dur_us, std::memory_order_relaxed);
  slot.arg_key.store(arg_key, std::memory_order_relaxed);
  slot.arg_value.store(arg_value, std::memory_order_relaxed);
  slot.sampled.store(ctx.sampled, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);  // even: published
}

}  // namespace

bool Timeline::enabled() noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

void Timeline::set_sample_rate(double rate) { state().set_rate(rate); }

double Timeline::sample_rate() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.rate;
}

void Timeline::set_ring_capacity(std::size_t spans) {
  if (spans == 0) spans = 1;
  state().ring_capacity.store(spans, std::memory_order_relaxed);
}

std::size_t Timeline::ring_capacity() {
  return state().ring_capacity.load(std::memory_order_relaxed);
}

void Timeline::mark_slow(std::uint64_t trace_id, double us) {
  if (trace_id == 0) return;
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.slow.push_back({trace_id, us});
  while (s.slow.size() > kSlowTraceCapacity) s.slow.pop_front();
}

TimelineSnapshot Timeline::snapshot() {
  State& s = state();
  std::vector<std::shared_ptr<Ring>> rings;
  TimelineSnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    rings = s.rings;  // copy the shared_ptrs; slot reads happen unlocked
    snap.slow.assign(s.slow.begin(), s.slow.end());
  }
  for (const std::shared_ptr<Ring>& ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::size_t capacity = ring->slots.size();
    const std::uint64_t count = head < capacity ? head : capacity;
    for (std::uint64_t i = 0; i < count; ++i) {
      const Slot& slot = ring->slots[i % capacity];
      const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
      if (seq_before & 1) continue;  // mid-write
      TimelineSpan span;
      span.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      span.span_id = slot.span_id.load(std::memory_order_relaxed);
      span.parent_id = slot.parent_id.load(std::memory_order_relaxed);
      const char* name = slot.name.load(std::memory_order_relaxed);
      span.name = name ? name : "";
      span.t_start_us = slot.t_start_us.load(std::memory_order_relaxed);
      span.dur_us = slot.dur_us.load(std::memory_order_relaxed);
      span.arg_key = slot.arg_key.load(std::memory_order_relaxed);
      span.arg_value = slot.arg_value.load(std::memory_order_relaxed);
      span.sampled = slot.sampled.load(std::memory_order_relaxed);
      span.thread_index = ring->thread_index;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq_before) continue;
      if (span.trace_id == 0 || span.span_id == 0) continue;  // never written
      snap.spans.push_back(span);
    }
  }
  return snap;
}

void Timeline::reset() {
  State& s = state();
  std::vector<std::shared_ptr<Ring>> rings;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    rings = s.rings;
    s.slow.clear();
  }
  for (const std::shared_ptr<Ring>& ring : rings) {
    for (Slot& slot : ring->slots) {
      const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
      slot.seq.store(seq + 1, std::memory_order_release);
      slot.trace_id.store(0, std::memory_order_relaxed);
      slot.span_id.store(0, std::memory_order_relaxed);
      slot.seq.store(seq + 2, std::memory_order_release);
    }
    ring->head.store(0, std::memory_order_release);
  }
}

std::int64_t Timeline::now_us() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() - epoch)
      .count();
}

std::uint64_t Timeline::emit(const TraceContext& ctx, const char* name,
                             std::int64_t t_start_us, std::int64_t t_end_us,
                             std::uint64_t parent_id, const char* arg_key,
                             double arg_value) {
  if (!ctx.active()) return 0;
  const std::uint64_t span_id = next_id();
  if (parent_id == 0) parent_id = ctx.span_id;
  const std::int64_t dur = t_end_us > t_start_us ? t_end_us - t_start_us : 0;
  record(ctx, span_id, parent_id, name, t_start_us, dur, arg_key, arg_value);
  return span_id;
}

TraceContext current_context() noexcept { return t_context; }

TraceScope::TraceScope(const char* name) noexcept : prev_(t_context), name_(name) {
  if (prev_.active()) {
    // Nested trace: behave as a child span of the enclosing trace.
    span_id_ = next_id();
    t_start_us_ = Timeline::now_us();
    t_context.span_id = span_id_;
    return;
  }
  if (!Timeline::enabled()) return;  // the whole cost when tracing is off
  span_id_ = next_id();
  t_start_us_ = Timeline::now_us();
  t_context.trace_id = next_id();
  t_context.span_id = span_id_;
  t_context.sampled = draw_sampled();
}

TraceScope::~TraceScope() {
  if (span_id_ == 0) return;
  const TraceContext ctx{t_context.trace_id, prev_.span_id, t_context.sampled};
  record(ctx, span_id_, prev_.span_id, name_, t_start_us_,
         Timeline::now_us() - t_start_us_, nullptr, 0.0);
  t_context = prev_;
}

TraceContext TraceScope::context() const noexcept {
  if (span_id_ == 0) return {};
  return TraceContext{t_context.trace_id, span_id_, t_context.sampled};
}

std::uint64_t TraceScope::trace_id() const noexcept {
  return span_id_ == 0 ? 0 : t_context.trace_id;
}

SpanScope::SpanScope(const char* name) noexcept : name_(name) {
  if (!t_context.active()) return;
  span_id_ = next_id();
  parent_id_ = t_context.span_id;
  t_start_us_ = Timeline::now_us();
  t_context.span_id = span_id_;
}

SpanScope::~SpanScope() {
  if (span_id_ == 0) return;
  const TraceContext ctx{t_context.trace_id, parent_id_, t_context.sampled};
  record(ctx, span_id_, parent_id_, name_, t_start_us_,
         Timeline::now_us() - t_start_us_, arg_key_, arg_value_);
  t_context.span_id = parent_id_;
}

ContextGuard::ContextGuard(const TraceContext& ctx) noexcept : prev_(t_context) {
  t_context = ctx;
}

ContextGuard::~ContextGuard() { t_context = prev_; }

}  // namespace ef::obs

#endif  // EVOFORECAST_OBS_ENABLED
