// match_backend.hpp — pluggable implementations of the match hot loop.
//
// Evaluating one offspring rule tests every training window (up to ~45 000
// for Venice) against D interval genes; that scan dominates training
// wall-clock. This module isolates the per-range kernels behind a small
// enum so the engine (match_engine.hpp) can dispatch and callers can select:
//
//   * kScalar       — the row-wise reference scan: one window at a time,
//                     short-circuiting on the first failing gene.
//   * kSoa          — structure-of-arrays: one lag-major column pass per
//                     non-wildcard gene, AND-ing a branchless pass/fail flag
//                     per window. The inner loop is a pure compare-and-mask
//                     over contiguous doubles, which auto-vectorizes.
//   * kSoaPrefilter — SoA plus selectivity ordering: non-wildcard genes are
//                     processed narrowest-interval first. On views carrying
//                     the quantized byte mirror (WindowDataset builds one),
//                     the narrowest gene is relaxed to a byte range and
//                     scanned over uint8 columns — 8× less memory traffic
//                     than the double column, 16 lanes per SSE2 compare —
//                     and the surviving candidates are re-verified exactly
//                     against the contiguous row-major mirror (all genes,
//                     narrowest first). On plain views it falls back to a
//                     double column scan + in-place candidate compaction.
//   * kAvx2         — the prefilter algorithm with a 32-lane AVX2 byte scan
//                     instead of the 16-lane SSE2 one. Compiled via function
//                     target attributes, so the binary stays runnable on a
//                     baseline x86-64 machine; the kernel is only *executed*
//                     when the CPU reports AVX2 (cpuid-probed once at
//                     startup — see cpu_supports_avx2). Selecting kAvx2 on a
//                     CPU without AVX2 falls back to kSoaPrefilter cleanly.
//   * kRuleMajor    — whole-ruleset batched kernel: quantized lo/hi byte
//                     planes for every gene of every rule, built once per
//                     batch, matched against the window stream in ONE pass
//                     (windows outer, 16/32 rules per SIMD lane-set with
//                     per-window candidate bitmasks), exact scalar
//                     verification only on survivors. This is the training
//                     hot-loop shape: evaluating a whole population touches
//                     each window once instead of once per rule. Single-rule
//                     queries under kRuleMajor use the best per-rule kernel
//                     (kAvx2 when the CPU has it, else kSoaPrefilter).
//   * kAuto         — resolve-time placeholder: pick the best backend the
//                     CPU supports (currently kRuleMajor, whose SIMD inner
//                     loops self-dispatch between AVX2/SSE2/scalar).
//
// All kernels produce bit-identical match sets (ascending window indices,
// identical NaN semantics: a non-wildcard gene rejects NaN, a wildcard
// accepts anything) — backends differ only in speed. Quantization never
// costs a match: the byte mapping is monotone, so the relaxed byte range is
// a superset of the gene's exact interval, and every candidate is re-checked
// with the same double comparisons the scalar kernel uses. The engine
// default is kAuto; the EVOFORECAST_MATCH_BACKEND environment variable
// overrides any configured choice and EVOFORECAST_MATCH_CPU=baseline masks
// the AVX2 cpuid probe (ops/test hook — see resolve_match_backend).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/interval.hpp"

namespace ef::core {

enum class MatchBackend {
  kScalar,        ///< row-wise reference scan
  kSoa,           ///< lag-major vectorizable flag kernel
  kSoaPrefilter,  ///< lag-major with selectivity-ordered candidate pruning
  kAvx2,          ///< prefilter with a 32-lane AVX2 byte scan (cpuid-gated)
  kRuleMajor,     ///< whole-ruleset batched plane kernel (one window pass)
  kAuto,          ///< resolve-time: best backend the CPU supports
};

[[nodiscard]] constexpr const char* to_string(MatchBackend b) noexcept {
  switch (b) {
    case MatchBackend::kScalar: return "scalar";
    case MatchBackend::kSoa: return "soa";
    case MatchBackend::kSoaPrefilter: return "soa_prefilter";
    case MatchBackend::kAvx2: return "avx2";
    case MatchBackend::kRuleMajor: return "rule_major";
    case MatchBackend::kAuto: return "auto";
  }
  return "?";
}

/// Parse a backend name ("scalar", "soa", "soa_prefilter", "avx2",
/// "rule_major", "auto"; "soa+prefilter" is accepted as an alias).
/// nullopt on anything else.
[[nodiscard]] std::optional<MatchBackend> parse_match_backend(std::string_view name) noexcept;

/// Does this CPU support AVX2? Probed once per process (cpuid via
/// __builtin_cpu_supports); always false on non-x86 builds. The
/// EVOFORECAST_MATCH_CPU environment variable overrides the probe:
/// "baseline" forces false (proves the no-AVX fallback path without needing
/// pre-AVX hardware), anything else is ignored.
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// Pure dispatch decision, exposed for unit tests: maps a configured choice
/// and the CPU's AVX2 capability to the backend that will actually run.
/// kAuto picks kRuleMajor (its SIMD inner loops self-dispatch); kAvx2
/// without CPU support degrades to kSoaPrefilter. Never returns kAuto.
[[nodiscard]] constexpr MatchBackend pick_match_backend(MatchBackend configured,
                                                        bool avx2_supported) noexcept {
  if (configured == MatchBackend::kAuto) return MatchBackend::kRuleMajor;
  if (configured == MatchBackend::kAvx2 && !avx2_supported) {
    return MatchBackend::kSoaPrefilter;
  }
  return configured;
}

/// Apply the EVOFORECAST_MATCH_BACKEND environment override to a configured
/// choice, then resolve it against the CPU (pick_match_backend). An unset
/// variable leaves `configured` in charge; a set but unparsable value warns
/// once on stderr and is ignored. The environment is read once per process
/// (the result is cached). The first time a given backend is selected, a
/// one-time "match.backend_selected" event and counter are emitted so smoke
/// scripts and efstat can assert the dispatch decision.
[[nodiscard]] MatchBackend resolve_match_backend(MatchBackend configured);

/// Lag-major (transposed) view of packed windows: column j holds the value
/// of lag j for every window, contiguously. Built once by WindowDataset at
/// construction; forecast_batch builds one per batch.
struct LagMajorView {
  const double* data = nullptr;  ///< window columns of `count` doubles each
  std::size_t count = 0;         ///< windows (rows of the logical matrix)
  std::size_t window = 0;        ///< lags (columns)

  /// Optional row-major mirror of the same windows (count × window,
  /// window-contiguous per row). When present together with `qdata`, the
  /// prefilter kernel verifies byte-pass candidates against one contiguous
  /// row instead of gathering from `window` strided columns.
  const double* rows = nullptr;

  /// Optional quantized lag-major mirror: byte = clamp(⌊(v − qmin)·qinv⌋,
  /// 0, 255), same column layout as `data`. The mapping is monotone, so a
  /// gene interval relaxed to byte bounds the same way yields a candidate
  /// superset — exact double verification then restores bit-identical match
  /// sets. nullptr on ad-hoc views (kernels fall back to double columns).
  const std::uint8_t* qdata = nullptr;
  double qmin = 0.0;  ///< quantization origin (dataset value minimum)
  double qinv = 0.0;  ///< 255 / (max − min); 0 for a constant series

  /// Optional quantized row-major mirror (count × window, same byte map as
  /// `qdata`). The rule-major kernel streams this — one window's bytes are
  /// broadcast against the planes of 16/32 rules at a time. nullptr on
  /// views that never feed the batched kernel.
  const std::uint8_t* qrows = nullptr;

  [[nodiscard]] const double* col(std::size_t j) const noexcept {
    return data + j * count;
  }
  [[nodiscard]] const std::uint8_t* qcol(std::size_t j) const noexcept {
    return qdata + j * count;
  }
};

/// Quantized lo/hi byte planes plus exact verification mirrors for a whole
/// rule set — the input of the rule-major batched kernel. Built once per
/// evaluation batch (build_rule_planes); plane j is `padded` bytes, one lane
/// per rule, padded to the SIMD lane count with impossible ranges
/// (lo=255, hi=0) so padding lanes can never produce a candidate.
struct RulePlanes {
  std::size_t rule_count = 0;  ///< real rules (before lane padding)
  std::size_t window = 0;      ///< D — gene count every active rule must have
  std::size_t padded = 0;      ///< rule_count rounded up to the lane width
  std::size_t padded_genes = 0;  ///< window rounded up to 4 (AVX2 double lanes)

  std::vector<std::uint8_t> qlo;  ///< window planes × padded lanes
  std::vector<std::uint8_t> qhi;  ///< same layout as qlo

  /// Exact bounds, rule-major rows of `padded_genes` entries. Verification is
  /// pass = wild | (vlo <= v && v <= vhi) per gene — the same double
  /// comparisons the scalar kernel performs, which the AVX2 verifier runs
  /// four gene lanes at a time. `wmask` encodes "wildcard" as an all-ones
  /// double bit pattern (and 0.0 for bounded genes) so the vector verifier
  /// can OR it straight into the comparison mask; gene lanes past `window`
  /// are set passing so padded chunks never reject.
  std::vector<double> vlo;
  std::vector<double> vhi;
  std::vector<double> wmask;
  std::vector<std::uint8_t> active;  ///< per rule: 0 = matches nothing
};

/// Quantize one value through the view's monotone byte map. NaN maps to 0 —
/// safe because a bounded gene's exact verification rejects NaN anyway and a
/// wildcard's byte range is the full [0, 255].
[[nodiscard]] std::uint8_t quantize_value(double v, double qmin, double qinv) noexcept;

/// Build the batched planes for a rule set. `rule_genes[r]` is rule r's gene
/// span; a span whose length differs from `window` (including the empty span
/// callers use to exclude a rule) is marked inactive and matches nothing.
/// `qmin`/`qinv` must be the byte map of the view the planes will be matched
/// against.
[[nodiscard]] RulePlanes build_rule_planes(std::span<const std::span<const Interval>> rule_genes,
                                           std::size_t window, double qmin, double qinv);

/// Low-level kernels. Each appends the indices in [begin, end) whose window
/// matches `genes` to `out`, ascending. `genes.size()` must equal the view's
/// window length (callers handle the dimension-mismatch = matches-nothing
/// rule). Kernels are stateless and safe to call concurrently on disjoint
/// or overlapping ranges.
namespace matchkern {

/// Row-wise reference scan over row-major packed windows (`rows` is
/// count × window, window-contiguous per row).
void scalar_match(const double* rows, std::size_t window,
                  std::span<const Interval> genes, std::size_t begin, std::size_t end,
                  std::vector<std::size_t>& out);

/// SoA flag kernel: one column pass per non-wildcard gene.
void soa_match(const LagMajorView& view, std::span<const Interval> genes,
               std::size_t begin, std::size_t end, std::vector<std::size_t>& out);

/// SoA prefilter kernel: narrowest non-wildcard gene first, candidate-list
/// compaction for the rest. When `pruned_out` is non-null it accumulates the
/// number of windows eliminated by the first (most selective) gene — i.e.
/// windows never tested against the remaining genes. `avx2` widens the byte
/// scan to 32 lanes (requires cpu_supports_avx2(); silently degrades to the
/// SSE2 scan otherwise, results identical either way).
void soa_prefilter_match(const LagMajorView& view, std::span<const Interval> genes,
                         std::size_t begin, std::size_t end, std::vector<std::size_t>& out,
                         std::size_t* pruned_out = nullptr, bool avx2 = false);

/// Rule-major batched kernel: match every rule of `planes` against windows
/// [begin, end) in one pass, appending window i to out[r] (ascending; out
/// must hold planes.rule_count vectors). Requires view.qrows and view.rows;
/// the SIMD width (AVX2 / SSE2 / scalar) is chosen per call from the cpuid
/// probe. Bit-identical to running the scalar kernel per rule.
void rule_major_match(const LagMajorView& view, const RulePlanes& planes,
                      std::size_t begin, std::size_t end,
                      std::vector<std::vector<std::size_t>>& out);

}  // namespace matchkern

}  // namespace ef::core
